package apps

import (
	"testing"
	"time"

	"epcm/internal/kernel"
	"epcm/internal/manager"
	"epcm/internal/phys"
	"epcm/internal/sim"
	"epcm/internal/spcm"
	"epcm/internal/storage"
)

type mp3dFixture struct {
	clock *sim.Clock
	k     *kernel.Kernel
	s     *spcm.SPCM
	store *storage.Store
	sim   *MP3D
}

// newMP3DFixture builds a machine where the market matters: rent is always
// charged, and the simulation's income sustains only ~96 pages of its
// 200-page maximum appetite.
func newMP3DFixture(t *testing.T, adaptive bool, memPages int64, income float64) *mp3dFixture {
	t.Helper()
	mem := phys.NewMemory(phys.Config{FrameSize: 4096, TotalBytes: memPages * 4096, StoreData: false})
	var clock sim.Clock
	k := kernel.New(mem, &clock, sim.DECstation5000(), kernel.Config{})
	policy := spcm.DefaultPolicy()
	policy.FreeWhenUncontended = false
	policy.SavingsTaxRate = 0
	s := spcm.New(k, policy)
	store := storage.NewStore(&clock, storage.LocalDisk(), 4096)
	m, err := NewMP3D(k, s, manager.NewSwapBacking(store), income)
	if err != nil {
		t.Fatal(err)
	}
	m.Adaptive = adaptive
	m.MaxPages = 200
	m.MinPages = 16
	fx := &mp3dFixture{clock: &clock, k: k, s: s, store: store, sim: m}
	m.Tick = func() {
		fx.s.SettleAll()
		if _, err := fx.s.Enforce(); err != nil {
			t.Fatal(err)
		}
	}
	return fx
}

func TestAdaptiveSizesToAffordableMemory(t *testing.T) {
	// Income 0.375 drams/s at 1 dram/MB-s sustains 0.375 MB = 96 pages;
	// the policy targets 90% of that (86) as margin.
	fx := newMP3DFixture(t, true, 512, 0.375)
	pages, err := fx.sim.Step()
	if err != nil {
		t.Fatal(err)
	}
	if pages != 86 {
		t.Fatalf("working set = %d, want the affordable 86", pages)
	}
}

func TestAdaptiveReactsToCompetitorDemand(t *testing.T) {
	fx := newMP3DFixture(t, true, 256, 1e6) // rich: affordability no limit
	if _, err := fx.sim.Step(); err != nil {
		t.Fatal(err)
	}
	if fx.sim.seg.PageCount() != 200 {
		t.Fatalf("working set = %d, want 200 on an empty machine", fx.sim.seg.PageCount())
	}
	// A competitor asks for more than the free pool: unmet demand appears.
	g, err := manager.NewGeneric(fx.k, manager.Config{Name: "competitor", Source: fx.s})
	if err != nil {
		t.Fatal(err)
	}
	fx.s.Register(g, "competitor", 1e6)
	if _, err := fx.s.RequestFrames(g, 150, phys.AnyFrame()); err != nil {
		t.Fatal(err)
	}
	if fx.s.Demand() == 0 {
		t.Fatal("no unmet demand recorded")
	}
	// The adaptive simulation notices and shrinks, returning frames.
	if _, err := fx.sim.Step(); err != nil {
		t.Fatal(err)
	}
	if fx.sim.seg.PageCount() >= 200 {
		t.Fatal("adaptive simulation did not shrink under demand")
	}
	if fx.sim.Shrinks() == 0 {
		t.Fatal("no shrink recorded")
	}
	// Shrinking discarded regenerable data: no writeback I/O.
	if fx.store.Writes() != 0 {
		t.Fatalf("adaptive shrink performed %d writebacks", fx.store.Writes())
	}
	// The competitor can now actually get its memory.
	got, err := fx.s.RequestFrames(g, 100, phys.AnyFrame())
	if err != nil {
		t.Fatal(err)
	}
	if got < 90 {
		t.Fatalf("competitor got only %d frames after the shrink", got)
	}
}

// The §1 claim, measured end to end: with an income that sustains only
// half its appetite, the adaptive run completes the same total work much
// sooner than the oblivious run — which keeps its full working set, goes
// insolvent, has frames taken by SPCM enforcement (with swap writebacks),
// and refaults them from disk every step. "An application can only expect
// to trade space for time if the space is real, not virtual."
func TestAdaptiveBeatsObliviousUnderPressure(t *testing.T) {
	const work = 20000 // page·steps
	run := func(adaptive bool) (time.Duration, int64) {
		fx := newMP3DFixture(t, adaptive, 512, 0.375)
		start := fx.clock.Now()
		if _, err := fx.sim.RunWork(work); err != nil {
			t.Fatal(err)
		}
		return fx.clock.Now() - start, fx.store.Writes() + fx.store.Reads()
	}
	adaptiveTime, adaptiveIO := run(true)
	obliviousTime, obliviousIO := run(false)
	if adaptiveTime*2 >= obliviousTime {
		t.Fatalf("adaptive %v not clearly faster than oblivious %v",
			adaptiveTime.Round(time.Millisecond), obliviousTime.Round(time.Millisecond))
	}
	if adaptiveIO != 0 {
		t.Fatalf("adaptive run did %d I/O ops", adaptiveIO)
	}
	if obliviousIO == 0 {
		t.Fatal("oblivious run should thrash against the disk")
	}
}

func TestAdaptiveNeverBelowMinimum(t *testing.T) {
	fx := newMP3DFixture(t, true, 64, 0.01) // can afford almost nothing
	pages, err := fx.sim.Step()
	if err != nil {
		t.Fatal(err)
	}
	if pages != fx.sim.MinPages {
		t.Fatalf("working set %d, want the %d-page floor", pages, fx.sim.MinPages)
	}
}

func TestWorkConservation(t *testing.T) {
	// Total page·steps reaches the target regardless of adaptation — only
	// the step count differs.
	fx := newMP3DFixture(t, true, 512, 0.375)
	steps, err := fx.sim.RunWork(5000)
	if err != nil {
		t.Fatal(err)
	}
	if fx.sim.pageSteps < 5000 {
		t.Fatalf("work not completed: %d", fx.sim.pageSteps)
	}
	// At the affordable ~86 pages, 5000 page·steps needs > 25 steps (the
	// count a full 200-page set would need).
	if steps <= 25 {
		t.Fatalf("steps = %d, expected more, smaller steps", steps)
	}
}

// Adaptation works both ways: when the competitor releases its memory, the
// simulation grows its working set back toward the maximum.
func TestAdaptiveGrowsBackWhenMemoryReturns(t *testing.T) {
	fx := newMP3DFixture(t, true, 256, 1e6)
	if _, err := fx.sim.Step(); err != nil {
		t.Fatal(err)
	}
	g, err := manager.NewGeneric(fx.k, manager.Config{Name: "competitor", Source: fx.s})
	if err != nil {
		t.Fatal(err)
	}
	fx.s.Register(g, "competitor", 1e6)
	if _, err := fx.s.RequestFrames(g, 150, phys.AnyFrame()); err != nil {
		t.Fatal(err)
	}
	if _, err := fx.sim.Step(); err != nil { // shrinks
		t.Fatal(err)
	}
	shrunk := fx.sim.seg.PageCount()
	if shrunk >= 200 {
		t.Fatalf("did not shrink: %d", shrunk)
	}
	// The competitor finishes and returns everything.
	if _, err := g.ReturnFreeFrames(g.FreeFrames()); err != nil {
		t.Fatal(err)
	}
	if _, err := fx.sim.Step(); err != nil {
		t.Fatal(err)
	}
	if fx.sim.seg.PageCount() <= shrunk {
		t.Fatalf("did not grow back: %d -> %d", shrunk, fx.sim.seg.PageCount())
	}
}
