package apps

import (
	"sort"
	"testing"
	"time"

	"epcm/internal/kernel"
	"epcm/internal/manager"
	"epcm/internal/phys"
	"epcm/internal/sim"
	"epcm/internal/storage"
	"epcm/internal/ultrix"
)

type fixture struct {
	clock *sim.Clock
	k     *kernel.Kernel
	store *storage.Store
	g     *manager.Generic
	seg   *kernel.Segment
	ckpt  *Checkpointer
	wb    *WriteBarrier
}

func newFixture(t *testing.T, pages int64) *fixture {
	t.Helper()
	mem := phys.NewMemory(phys.Config{FrameSize: 4096, TotalBytes: 4 << 20, StoreData: true})
	var clock sim.Clock
	k := kernel.New(mem, &clock, sim.DECstation5000(), kernel.Config{})
	store := storage.NewStore(&clock, storage.Prefilled(), 4096)
	pool, err := manager.NewFixedPool(k, 512, 0)
	if err != nil {
		t.Fatal(err)
	}
	fx := &fixture{clock: &clock, k: k, store: store}
	fx.ckpt = NewCheckpointer(k, store)
	g, err := manager.NewGeneric(k, manager.Config{
		Name:       "app",
		Source:     pool,
		Protection: fx.ckpt.Hook(),
	})
	if err != nil {
		t.Fatal(err)
	}
	seg, err := g.CreateManagedSegment("heap")
	if err != nil {
		t.Fatal(err)
	}
	fx.g, fx.seg = g, seg
	fx.ckpt.Attach(g, seg)
	for p := int64(0); p < pages; p++ {
		if err := k.Access(seg, p, kernel.Write); err != nil {
			t.Fatal(err)
		}
		seg.FrameAt(p).Data()[0] = byte(p)
	}
	return fx
}

// The defining property of concurrent checkpointing: the image is the
// state at Begin, even though the application mutates pages while the
// checkpoint is in progress.
func TestCheckpointConsistency(t *testing.T) {
	fx := newFixture(t, 8)
	if err := fx.ckpt.Begin(); err != nil {
		t.Fatal(err)
	}
	// The application mutates pages 2 and 5 mid-checkpoint. Each first
	// write faults; the old contents are saved before the write proceeds.
	for _, p := range []int64{2, 5} {
		if err := fx.k.Access(fx.seg, p, kernel.Write); err != nil {
			t.Fatal(err)
		}
		fx.seg.FrameAt(p).Data()[0] = 0xFF
	}
	if err := fx.ckpt.Finish(); err != nil {
		t.Fatal(err)
	}
	img, err := fx.ckpt.Image(1, 8)
	if err != nil {
		t.Fatal(err)
	}
	for p := int64(0); p < 8; p++ {
		if img[p][0] != byte(p) {
			t.Fatalf("image page %d = %#x, want Begin-time value %#x", p, img[p][0], byte(p))
		}
	}
	// Live data reflects the mutations.
	if fx.seg.FrameAt(2).Data()[0] != 0xFF {
		t.Fatal("application write lost")
	}
	if fx.ckpt.FaultSaves() != 2 {
		t.Fatalf("fault saves = %d, want 2", fx.ckpt.FaultSaves())
	}
	if fx.ckpt.DrainSaves() != 6 {
		t.Fatalf("drain saves = %d, want 6", fx.ckpt.DrainSaves())
	}
}

func TestCheckpointSecondWriteIsFree(t *testing.T) {
	fx := newFixture(t, 4)
	if err := fx.ckpt.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := fx.k.Access(fx.seg, 0, kernel.Write); err != nil {
		t.Fatal(err)
	}
	faults := fx.k.Stats().ProtFaults
	if err := fx.k.Access(fx.seg, 0, kernel.Write); err != nil {
		t.Fatal(err)
	}
	if fx.k.Stats().ProtFaults != faults {
		t.Fatal("second write to a saved page faulted again")
	}
	if err := fx.ckpt.Finish(); err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointEpochsAreSeparate(t *testing.T) {
	fx := newFixture(t, 2)
	if err := fx.ckpt.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := fx.ckpt.Finish(); err != nil {
		t.Fatal(err)
	}
	// Mutate, then take a second checkpoint.
	if err := fx.k.Access(fx.seg, 0, kernel.Write); err != nil {
		t.Fatal(err)
	}
	fx.seg.FrameAt(0).Data()[0] = 0xEE
	if err := fx.ckpt.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := fx.ckpt.Finish(); err != nil {
		t.Fatal(err)
	}
	img1, err := fx.ckpt.Image(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	img2, err := fx.ckpt.Image(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if img1[0][0] != 0 || img2[0][0] != 0xEE {
		t.Fatalf("epochs mixed: %#x / %#x", img1[0][0], img2[0][0])
	}
}

func TestCheckpointBeginWhileActiveFails(t *testing.T) {
	fx := newFixture(t, 2)
	if err := fx.ckpt.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := fx.ckpt.Begin(); err == nil {
		t.Fatal("nested Begin accepted")
	}
}

func TestWriteBarrierRecordsExactlyWrittenPages(t *testing.T) {
	mem := phys.NewMemory(phys.Config{FrameSize: 4096, TotalBytes: 4 << 20, StoreData: true})
	var clock sim.Clock
	k := kernel.New(mem, &clock, sim.DECstation5000(), kernel.Config{})
	pool, err := manager.NewFixedPool(k, 256, 0)
	if err != nil {
		t.Fatal(err)
	}
	var wb *WriteBarrier
	g, err := manager.NewGeneric(k, manager.Config{
		Name:   "gc",
		Source: pool,
		Protection: func(f kernel.Fault) error {
			return wb.Hook()(f)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	seg, _ := g.CreateManagedSegment("heap")
	for p := int64(0); p < 16; p++ {
		if err := k.Access(seg, p, kernel.Write); err != nil {
			t.Fatal(err)
		}
	}
	wb = NewWriteBarrier(k, seg)
	if err := wb.Begin(); err != nil {
		t.Fatal(err)
	}
	// Mutator writes pages 3, 7, 7, 11; reads page 5.
	for _, p := range []int64{3, 7, 7, 11} {
		if err := k.Access(seg, p, kernel.Write); err != nil {
			t.Fatal(err)
		}
	}
	if err := k.Access(seg, 5, kernel.Read); err != nil {
		t.Fatal(err)
	}
	written := wb.End()
	sort.Slice(written, func(i, j int) bool { return written[i] < written[j] })
	want := []int64{3, 7, 11}
	if len(written) != len(want) {
		t.Fatalf("written = %v, want %v", written, want)
	}
	for i := range want {
		if written[i] != want[i] {
			t.Fatalf("written = %v, want %v", written, want)
		}
	}
	if wb.Faults() != 3 {
		t.Fatalf("barrier faults = %d, want 3 (duplicates free)", wb.Faults())
	}
}

// §3.1's comparison: the per-trapped-write cost of the barrier is cheaper
// on V++ (manager protection fault) than the Ultrix signal+mprotect path.
func TestBarrierCostVppVsUltrix(t *testing.T) {
	// V++: one barrier fault = trap + upcall + ModifyPageFlags + resume.
	fx := newFixture(t, 4)
	wb := NewWriteBarrier(fx.k, fx.seg)
	// Rebind the manager hook to the barrier for this measurement: Attach a
	// fresh fixture whose Protection hook routes to wb.
	mem := phys.NewMemory(phys.Config{FrameSize: 4096, TotalBytes: 4 << 20, StoreData: true})
	var clock sim.Clock
	k := kernel.New(mem, &clock, sim.DECstation5000(), kernel.Config{})
	pool, err := manager.NewFixedPool(k, 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	g, err := manager.NewGeneric(k, manager.Config{
		Name:   "gc",
		Source: pool,
		Protection: func(f kernel.Fault) error {
			return wb.Hook()(f)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	seg, _ := g.CreateManagedSegment("heap")
	if err := k.Access(seg, 0, kernel.Write); err != nil {
		t.Fatal(err)
	}
	wb = NewWriteBarrier(k, seg)
	if err := wb.Begin(); err != nil {
		t.Fatal(err)
	}
	start := clock.Now()
	if err := k.Access(seg, 0, kernel.Write); err != nil {
		t.Fatal(err)
	}
	vppCost := clock.Now() - start

	// Ultrix: signal + mprotect handler path is a fixed 152 µs.
	var uclock sim.Clock
	ustore := storage.NewStore(&uclock, storage.Prefilled(), 4096)
	us := ultrix.New(&uclock, sim.DECstation5000(), ustore, 256)
	region := us.NewRegion("heap")
	region.Touch(0, true)
	region.Mprotect(0, true)
	ustart := uclock.Now()
	region.Touch(0, true)
	ultrixCost := uclock.Now() - ustart

	if ultrixCost != 152*time.Microsecond {
		t.Fatalf("ultrix barrier cost %v, want 152µs", ultrixCost)
	}
	if vppCost >= ultrixCost {
		t.Fatalf("V++ barrier (%v) should beat Ultrix (%v)", vppCost, ultrixCost)
	}
}

func TestCheckpointRestoreRecoversState(t *testing.T) {
	fx := newFixture(t, 8)
	if err := fx.ckpt.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := fx.ckpt.Finish(); err != nil {
		t.Fatal(err)
	}
	// "Crash": scribble over everything.
	for p := int64(0); p < 8; p++ {
		if err := fx.k.Access(fx.seg, p, kernel.Write); err != nil {
			t.Fatal(err)
		}
		fx.seg.FrameAt(p).Data()[0] = 0xDE
	}
	if err := fx.ckpt.Restore(1, 8); err != nil {
		t.Fatal(err)
	}
	for p := int64(0); p < 8; p++ {
		if got := fx.seg.FrameAt(p).Data()[0]; got != byte(p) {
			t.Fatalf("page %d restored to %#x, want %#x", p, got, byte(p))
		}
	}
}

func TestRestoreDuringActiveCheckpointFails(t *testing.T) {
	fx := newFixture(t, 4)
	if err := fx.ckpt.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := fx.ckpt.Restore(1, 4); err == nil {
		t.Fatal("restore during active checkpoint succeeded")
	}
}

func TestRestoreRebuildsEvictedPages(t *testing.T) {
	fx := newFixture(t, 16)
	if err := fx.ckpt.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := fx.ckpt.Finish(); err != nil {
		t.Fatal(err)
	}
	// Evict some pages entirely, then restore: the missing pages must be
	// re-materialized with checkpoint contents.
	if err := fx.k.ModifyPageFlags(kernel.AppCred, fx.seg, 0, 4, 0, kernel.FlagReferenced); err != nil {
		t.Fatal(err)
	}
	if _, err := fx.g.Reclaim(3, phys.AnyFrame()); err != nil {
		t.Fatal(err)
	}
	if err := fx.ckpt.Restore(1, 8); err != nil {
		t.Fatal(err)
	}
	for p := int64(0); p < 8; p++ {
		if !fx.seg.HasPage(p) {
			t.Fatalf("page %d missing after restore", p)
		}
		if got := fx.seg.FrameAt(p).Data()[0]; got != byte(p) {
			t.Fatalf("page %d = %#x", p, got)
		}
	}
}
