package apps

import (
	"fmt"
	"time"

	"epcm/internal/kernel"
	"epcm/internal/manager"
	"epcm/internal/spcm"
)

// MP3D models the paper's §1 motivating application: "MP3D, a large scale
// parallel particle simulation ... generates a final result based on the
// averaging of a number of simulation runs. The simulation can be run for
// a shorter amount of time if it uses many runs with a large number of
// particles. This application could automatically adjust the number of
// particles it uses for a run, and thus the amount of memory it requires,
// based on availability of physical memory."
//
// The model: a fixed amount of total work (particle·steps, here
// page·steps) must be performed. Each step scans the current working set
// once, paying compute per page. An *adaptive* run resizes its working set
// to what the SPCM can actually give it — fewer particles per step, more
// steps, no paging. An *oblivious* run keeps its maximum working set and
// thrashes when physical memory shrinks underneath it.
type MP3D struct {
	k       *kernel.Kernel
	s       *spcm.SPCM
	mgr     *manager.Generic
	account *spcm.Account
	seg     *kernel.Segment

	// Adaptive selects working-set resizing.
	Adaptive bool
	// MaxPages and MinPages bound the working set.
	MaxPages, MinPages int
	// ComputePerPage is the per-step cost of processing one page of
	// particles.
	ComputePerPage time.Duration
	// HeadroomPages is how many frames the adaptive policy leaves free for
	// the rest of the system.
	HeadroomPages int
	// Tick, when set, runs after every step — the test and example hook
	// for the SPCM's periodic settle/enforce cycle.
	Tick func()

	steps     int64
	pageSteps int64
	shrinks   int64
	curPages  int
}

// NewMP3D builds the simulation over a manager registered with the SPCM.
func NewMP3D(k *kernel.Kernel, s *spcm.SPCM, backing manager.Backing, income float64) (*MP3D, error) {
	m := &MP3D{
		k:              k,
		s:              s,
		MaxPages:       256,
		MinPages:       16,
		ComputePerPage: time.Millisecond,
		HeadroomPages:  8,
	}
	g, err := manager.NewGeneric(k, manager.Config{
		Name:         "mp3d",
		Backing:      backing,
		Source:       s,
		RequestBatch: 32,
	})
	if err != nil {
		return nil, err
	}
	m.mgr = g
	m.account = s.Register(g, "mp3d", income)
	seg, err := g.CreateManagedSegment("particles")
	if err != nil {
		return nil, err
	}
	m.seg = seg
	return m, nil
}

// Manager exposes the simulation's segment manager (tests).
func (m *MP3D) Manager() *manager.Generic { return m.mgr }

// Steps and Shrinks report progress and adaptation counts.
func (m *MP3D) Steps() int64   { return m.steps }
func (m *MP3D) Shrinks() int64 { return m.shrinks }

// chooseWorkingSet sizes the next step's working set. The adaptive policy
// uses exactly the information the paper says conventional systems never
// export: how much physical memory is actually obtainable (free pool plus
// current holdings, minus headroom and the unmet demand of competitors)
// and how much the account's income can sustainably pay for.
func (m *MP3D) chooseWorkingSet() int {
	if !m.Adaptive {
		return m.MaxPages
	}
	held := m.mgr.FreeFrames() + m.mgr.ResidentPages()
	avail := held + m.s.FreeFrames() - m.HeadroomPages - m.s.Demand()
	target := m.MaxPages
	if avail < target {
		target = avail
	}
	// Affordability: holding P pages costs P/pagesPerMB × D drams per
	// second; spend at most 90% of the account's income, leaving margin so
	// rounding and timing jitter never tip the account into enforcement.
	if price := m.s.Policy().PricePerMBSecond; price > 0 {
		pagesPerMB := float64(1<<20) / float64(m.k.Mem().FrameSize())
		affordable := int(0.9 * m.account.Income() / price * pagesPerMB)
		if affordable < target {
			target = affordable
		}
	}
	if target < m.MinPages {
		target = m.MinPages
	}
	return target
}

// shrinkTo discards working-set pages above target. The particle data is
// regenerable (it is re-initialized each run), so the pages are marked
// discardable and dropped with no writeback — the application-knowledge
// move the kernel could never make on its own.
func (m *MP3D) shrinkTo(target int) error {
	pages := m.seg.Pages()
	if len(pages) <= target {
		return nil
	}
	excess := pages[target:]
	for _, p := range excess {
		if err := m.k.ModifyPageFlags(kernel.AppCred, m.seg, p, 1, kernel.FlagDiscardable, 0); err != nil {
			return err
		}
		if err := m.mgr.EvictPage(m.seg, p); err != nil {
			return err
		}
	}
	// Return the freed frames so other applications can use them.
	if _, err := m.mgr.ReturnFreeFrames(len(excess)); err != nil {
		return err
	}
	m.shrinks++
	m.curPages = target
	return nil
}

// Step performs one simulated time step over the chosen working set and
// reports the pages processed.
func (m *MP3D) Step() (int, error) {
	target := m.chooseWorkingSet()
	if m.Adaptive && m.seg.PageCount() > target {
		if err := m.shrinkTo(target); err != nil {
			return 0, err
		}
	}
	for p := int64(0); p < int64(target); p++ {
		if err := m.k.Access(m.seg, p, kernel.Write); err != nil {
			return 0, fmt.Errorf("mp3d step %d page %d: %w", m.steps, p, err)
		}
		m.k.Clock().Advance(m.ComputePerPage)
	}
	m.steps++
	m.pageSteps += int64(target)
	m.curPages = target
	// Rent is charged on *held* frames, free ones included; keep only a
	// small buffer beyond the working set.
	if m.Adaptive && m.mgr.FreeFrames() > 4 {
		if _, err := m.mgr.ReturnFreeFrames(m.mgr.FreeFrames() - 4); err != nil {
			return 0, err
		}
	}
	if m.Tick != nil {
		m.Tick()
	}
	return target, nil
}

// RunWork performs steps until the total work target (page·steps) is met,
// returning the number of steps taken.
func (m *MP3D) RunWork(targetPageSteps int64) (int64, error) {
	start := m.steps
	for m.pageSteps < targetPageSteps {
		if _, err := m.Step(); err != nil {
			return m.steps - start, err
		}
	}
	return m.steps - start, nil
}
