package apps

import (
	"testing"
	"time"

	"epcm/internal/kernel"
	"epcm/internal/manager"
	"epcm/internal/phys"
	"epcm/internal/sim"
	"epcm/internal/spcm"
	"epcm/internal/storage"
)

func newQueryFixture(t *testing.T, adaptive bool, memPages int64) (*ParallelQuery, *sim.Clock, *storage.Store, *spcm.SPCM) {
	t.Helper()
	mem := phys.NewMemory(phys.Config{FrameSize: 4096, TotalBytes: memPages * 4096, StoreData: false})
	var clock sim.Clock
	k := kernel.New(mem, &clock, sim.DECstation5000(), kernel.Config{})
	s := spcm.New(k, spcm.DefaultPolicy())
	store := storage.NewStore(&clock, storage.LocalDisk(), 4096)
	q, err := NewParallelQuery(k, s, manager.NewSwapBacking(store), 1e6)
	if err != nil {
		t.Fatal(err)
	}
	q.Adaptive = adaptive
	return q, &clock, store, s
}

func TestQueryUsesFullParallelismWhenMemoryAmple(t *testing.T) {
	q, _, _, _ := newQueryFixture(t, true, 1024) // 8 workers × 64 pages fits easily
	if _, err := q.Run(); err != nil {
		t.Fatal(err)
	}
	if q.Degree() != q.MaxDegree {
		t.Fatalf("degree = %d, want max %d on an ample machine", q.Degree(), q.MaxDegree)
	}
}

func TestQueryAdaptsDegreeToMemory(t *testing.T) {
	q, _, _, _ := newQueryFixture(t, true, 200) // fits ~2 workers of 64 pages
	if _, err := q.Run(); err != nil {
		t.Fatal(err)
	}
	if q.Degree() >= q.MaxDegree {
		t.Fatalf("degree = %d, should have adapted down", q.Degree())
	}
	if q.Degree() < 1 || q.Degree() > 3 {
		t.Fatalf("degree = %d, want 2-3 on a 200-page machine", q.Degree())
	}
}

// §1's claim: on a constrained machine the adaptive plan (fewer workers,
// each fitting in memory) beats the oblivious maximum-parallelism plan,
// whose combined working set thrashes.
func TestAdaptiveQueryBeatsObliviousWhenMemoryTight(t *testing.T) {
	run := func(adaptive bool) (time.Duration, int64) {
		q, clock, store, _ := newQueryFixture(t, adaptive, 200)
		start := clock.Now()
		if _, err := q.Run(); err != nil {
			t.Fatal(err)
		}
		return clock.Now() - start, store.Reads() + store.Writes()
	}
	adaptiveTime, adaptiveIO := run(true)
	obliviousTime, obliviousIO := run(false)
	if adaptiveTime >= obliviousTime {
		t.Fatalf("adaptive %v not faster than oblivious %v",
			adaptiveTime.Round(time.Millisecond), obliviousTime.Round(time.Millisecond))
	}
	if obliviousIO <= adaptiveIO {
		t.Fatalf("oblivious should thrash: io %d vs adaptive %d", obliviousIO, adaptiveIO)
	}
}

func TestQueryReleasesMemoryAfterRun(t *testing.T) {
	q, _, _, s := newQueryFixture(t, true, 512)
	free0 := s.FreeFrames()
	if _, err := q.Run(); err != nil {
		t.Fatal(err)
	}
	if s.FreeFrames() != free0 {
		t.Fatalf("SPCM has %d free, started with %d — query leaked frames", s.FreeFrames(), free0)
	}
}

func TestQueryWorkConserved(t *testing.T) {
	// The same total touches happen regardless of degree: a degree-1 run
	// and a degree-8 run touch the same number of pages overall.
	q1, c1, _, _ := newQueryFixture(t, true, 100) // forces low degree
	if _, err := q1.Run(); err != nil {
		t.Fatal(err)
	}
	q8, c8, _, _ := newQueryFixture(t, true, 1024)
	if _, err := q8.Run(); err != nil {
		t.Fatal(err)
	}
	// More parallelism on an ample machine is faster (CPU-bound phase).
	if c8.Now() >= c1.Now() {
		t.Fatalf("degree-%d (%v) not faster than degree-%d (%v)",
			q8.Degree(), c8.Now(), q1.Degree(), c1.Now())
	}
}
