package storage

import (
	"bytes"
	"testing"
	"time"

	"epcm/internal/sim"
)

func TestStoreRoundTrip(t *testing.T) {
	var clock sim.Clock
	s := NewStore(&clock, LocalDisk(), 4096)
	in := make([]byte, 4096)
	for i := range in {
		in[i] = byte(i)
	}
	if err := s.Store("f", 3, in); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, 4096)
	if err := s.Fetch("f", 3, out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(in, out) {
		t.Fatal("round trip corrupted data")
	}
	if s.Size("f") != 4 {
		t.Fatalf("Size = %d, want 4", s.Size("f"))
	}
	if s.Reads() != 1 || s.Writes() != 1 {
		t.Fatalf("reads=%d writes=%d", s.Reads(), s.Writes())
	}
}

func TestStoreUnwrittenBlockReadsZeros(t *testing.T) {
	var clock sim.Clock
	s := NewStore(&clock, Prefilled(), 4096)
	buf := []byte{1, 2, 3}
	if err := s.Fetch("ghost", 0, buf); err != nil {
		t.Fatal(err)
	}
	for _, b := range buf {
		if b != 0 {
			t.Fatal("unwritten block not zeroed")
		}
	}
}

func TestStoreChargesLatency(t *testing.T) {
	var clock sim.Clock
	model := LocalDisk()
	s := NewStore(&clock, model, 4096)
	buf := make([]byte, 4096)
	if err := s.Fetch("f", 0, buf); err != nil {
		t.Fatal(err)
	}
	want := model.PerAccess + 4096*model.PerByte
	if clock.Now() != want {
		t.Fatalf("latency %v, want %v", clock.Now(), want)
	}
	// Network fetch is slower than local disk for the same page.
	var clock2 sim.Clock
	s2 := NewStore(&clock2, NetworkServer(), 4096)
	if err := s2.Fetch("f", 0, buf); err != nil {
		t.Fatal(err)
	}
	if clock2.Now() <= clock.Now() {
		t.Fatalf("network (%v) should cost more than local disk (%v)", clock2.Now(), clock.Now())
	}
}

func TestStoreChargingToggle(t *testing.T) {
	var clock sim.Clock
	s := NewStore(&clock, LocalDisk(), 4096)
	s.SetCharging(false)
	buf := make([]byte, 4096)
	if err := s.Store("f", 0, buf); err != nil {
		t.Fatal(err)
	}
	if clock.Now() != 0 {
		t.Fatal("charging disabled but clock moved")
	}
	s.SetCharging(true)
	if err := s.Store("f", 1, buf); err != nil {
		t.Fatal(err)
	}
	if clock.Now() == 0 {
		t.Fatal("charging enabled but clock did not move")
	}
}

func TestStoreValidation(t *testing.T) {
	var clock sim.Clock
	s := NewStore(&clock, Prefilled(), 4096)
	big := make([]byte, 8192)
	if err := s.Store("f", 0, big); err == nil {
		t.Fatal("oversized buffer accepted")
	}
	if err := s.Fetch("f", -1, big[:10]); err == nil {
		t.Fatal("negative block accepted")
	}
	if err := s.Store("f", -1, big[:10]); err == nil {
		t.Fatal("negative block accepted on store")
	}
}

func TestStorePartialBlockWritePadsWithZeros(t *testing.T) {
	var clock sim.Clock
	s := NewStore(&clock, Prefilled(), 4096)
	if err := s.Store("f", 0, []byte{9, 9}); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, 4096)
	if err := s.Fetch("f", 0, out); err != nil {
		t.Fatal(err)
	}
	if out[0] != 9 || out[1] != 9 || out[2] != 0 {
		t.Fatal("partial write not padded")
	}
}

func TestPreloadIsFreeAndUncounted(t *testing.T) {
	var clock sim.Clock
	s := NewStore(&clock, LocalDisk(), 4096)
	s.Preload("data", 100, func(block int64, buf []byte) {
		buf[0] = byte(block)
	})
	if clock.Now() != 0 {
		t.Fatalf("preload charged %v", clock.Now())
	}
	if s.Reads() != 0 || s.Writes() != 0 {
		t.Fatal("preload counted operations")
	}
	if s.Size("data") != 100 {
		t.Fatalf("Size = %d", s.Size("data"))
	}
	buf := make([]byte, 4096)
	if err := s.Fetch("data", 7, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 7 {
		t.Fatal("preloaded data wrong")
	}
	if clock.Now() == 0 {
		t.Fatal("post-preload fetch should charge latency")
	}
}

func TestLatencyModelsRoughMagnitudes(t *testing.T) {
	// A page fault to secondary storage costs "close to a million
	// instruction times" (§1) — tens of milliseconds on a 25 MHz machine.
	for _, m := range []LatencyModel{LocalDisk(), NetworkServer()} {
		page := m.PerAccess + 4096*m.PerByte
		if page < 10*time.Millisecond || page > 50*time.Millisecond {
			t.Errorf("%s: 4KB access %v outside plausible 10-50ms", m.Name, page)
		}
	}
}
