// Package storage models the backing store behind segment managers: block
// stores with latency models for a local disk of the period and for a
// diskless workstation's network file server (the paper's V++ machine is
// diskless, served by a DECstation 3100 running Ultrix 4.1).
//
// Managers call Fetch and Store to move page-sized blocks between frames
// and backing store; the latency is charged to the virtual clock, which is
// how page-fault I/O time enters every experiment.
package storage

import (
	"fmt"
	"sync"
	"time"

	"epcm/internal/sim"
)

// BlockStore is a persistent array of fixed-size blocks addressed by file
// name and block number. Implementations charge their access latency to a
// virtual clock.
type BlockStore interface {
	// Fetch reads block `block` of file `name` into buf and charges the
	// access latency. Reading a never-written block yields zeros.
	Fetch(name string, block int64, buf []byte) error
	// Store writes buf to block `block` of file `name` and charges the
	// access latency.
	Store(name string, block int64, buf []byte) error
	// Size reports the number of blocks ever written to the file.
	Size(name string) int64
	// BlockSize reports the store's block size in bytes.
	BlockSize() int
	// Reads and Writes report operation counts for instrumentation.
	Reads() int64
	Writes() int64
}

// LatencyModel describes one storage device's timing.
type LatencyModel struct {
	// PerAccess is the fixed cost of one block access (seek + rotation for
	// a disk; request round-trip for a network server).
	PerAccess time.Duration
	// PerByte is the transfer cost per byte.
	PerByte time.Duration
	// Name labels the device in diagnostics.
	Name string
}

// LocalDisk is a period-appropriate local SCSI disk: ~16 ms per 4 KB page.
func LocalDisk() LatencyModel {
	return LatencyModel{PerAccess: 15 * time.Millisecond, PerByte: 250 * time.Nanosecond, Name: "local-disk"}
}

// NetworkServer is the diskless configuration: a file server reached over
// 10 Mb/s Ethernet, ~20 ms per 4 KB page including the server's own disk.
func NetworkServer() LatencyModel {
	return LatencyModel{PerAccess: 17 * time.Millisecond, PerByte: 800 * time.Nanosecond, Name: "network-server"}
}

// Memory-resident store latency (for pre-cached experiment setups where the
// paper deliberately eliminates device time).
func Prefilled() LatencyModel {
	return LatencyModel{Name: "prefilled"}
}

// Op distinguishes the two block operations for fault hooks.
type Op uint8

// Block operations.
const (
	OpFetch Op = iota
	OpStore
)

func (o Op) String() string {
	if o == OpStore {
		return "store"
	}
	return "fetch"
}

// InjectedFault is a failure a FaultHook orders the store to produce.
type InjectedFault struct {
	// Err is returned from the operation. It should wrap ErrInjected (and
	// ErrTransient when the failure is retryable) so errors.Is works
	// through manager retry paths.
	Err error
	// Torn, on a store operation, persists the first half of the buffer
	// before Err surfaces — a torn write: later reads of the block see the
	// new prefix and the old suffix.
	Torn bool
}

// FaultHook inspects every Fetch and Store before it executes and may
// inject a failure by returning a non-nil InjectedFault. The device latency
// is still charged: a failed access takes time. A nil hook costs one branch
// on the I/O path, keeping the zero-overhead property when no fault plane
// is armed.
type FaultHook func(op Op, name string, block int64) *InjectedFault

// Store is the standard BlockStore implementation. It is safe for
// concurrent use: one mutex serializes block accesses, which stands in for
// the single server/device queue the paper's diskless workstation talks to.
// Managers that should not contend (the multi-application throughput
// experiment) get a store each.
type Store struct {
	clock     *sim.Clock
	model     LatencyModel
	blockSize int
	mu        sync.Mutex
	files     map[string]map[int64][]byte
	sizes     map[string]int64
	reads     int64
	writes    int64
	// chargeLatency can be disabled for setup phases (pre-loading files
	// before a measured run, as the paper does by running applications
	// "with the files they read cached in memory").
	charge bool
	hook   FaultHook
}

// NewStore builds a block store over the given clock and latency model.
func NewStore(clock *sim.Clock, model LatencyModel, blockSize int) *Store {
	if blockSize <= 0 {
		panic(fmt.Sprintf("storage: bad block size %d", blockSize))
	}
	return &Store{
		clock:     clock,
		model:     model,
		blockSize: blockSize,
		files:     make(map[string]map[int64][]byte),
		sizes:     make(map[string]int64),
		charge:    true,
	}
}

// SetCharging enables or disables latency charging (setup vs measured run).
func (s *Store) SetCharging(on bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.charge = on
}

// SetFaultHook installs (or, with nil, removes) the fault-injection hook.
func (s *Store) SetFaultHook(h FaultHook) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hook = h
}

// BlockSize reports the block size.
func (s *Store) BlockSize() int { return s.blockSize }

// Reads reports the number of Fetch calls.
func (s *Store) Reads() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reads
}

// Writes reports the number of Store calls.
func (s *Store) Writes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.writes
}

func (s *Store) chargeAccess(bytes int) {
	if !s.charge {
		return
	}
	s.clock.Advance(s.model.PerAccess + time.Duration(bytes)*s.model.PerByte)
}

// Fetch implements BlockStore.
func (s *Store) Fetch(name string, block int64, buf []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if block < 0 {
		return fmt.Errorf("storage: fetch %q block %d: negative block", name, block)
	}
	if len(buf) > s.blockSize {
		return fmt.Errorf("storage: fetch %q block %d: buffer %d exceeds block size %d",
			name, block, len(buf), s.blockSize)
	}
	s.reads++
	s.chargeAccess(len(buf))
	if s.hook != nil {
		if inj := s.hook(OpFetch, name, block); inj != nil {
			return inj.Err
		}
	}
	f := s.files[name]
	data, ok := f[block]
	if !ok {
		for i := range buf {
			buf[i] = 0
		}
		return nil
	}
	copy(buf, data)
	return nil
}

// Store implements BlockStore.
func (s *Store) Store(name string, block int64, buf []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.storeLocked(name, block, buf)
}

func (s *Store) storeLocked(name string, block int64, buf []byte) error {
	if block < 0 {
		return fmt.Errorf("storage: store %q block %d: negative block", name, block)
	}
	if len(buf) > s.blockSize {
		return fmt.Errorf("storage: store %q block %d: buffer %d exceeds block size %d",
			name, block, len(buf), s.blockSize)
	}
	s.writes++
	s.chargeAccess(len(buf))
	if s.hook != nil {
		if inj := s.hook(OpStore, name, block); inj != nil {
			if inj.Torn {
				s.tornWrite(name, block, buf)
			}
			return inj.Err
		}
	}
	f, ok := s.files[name]
	if !ok {
		f = make(map[int64][]byte)
		s.files[name] = f
	}
	// Overwrite an existing block in place: steady-state writeback of a hot
	// working set then allocates nothing.
	data, ok := f[block]
	if !ok {
		data = make([]byte, s.blockSize)
		f[block] = data
	}
	copy(data, buf)
	if len(buf) < len(data) {
		clear(data[len(buf):])
	}
	if block+1 > s.sizes[name] {
		s.sizes[name] = block + 1
	}
	return nil
}

// tornWrite persists the first half of buf into the block, leaving the old
// suffix in place — the on-media state after a write interrupted mid-block.
func (s *Store) tornWrite(name string, block int64, buf []byte) {
	half := len(buf) / 2
	if half == 0 {
		return
	}
	f, ok := s.files[name]
	if !ok {
		f = make(map[int64][]byte)
		s.files[name] = f
	}
	data, ok := f[block]
	if !ok {
		data = make([]byte, s.blockSize)
		f[block] = data
	}
	copy(data[:half], buf[:half])
	if block+1 > s.sizes[name] {
		s.sizes[name] = block + 1
	}
}

// Size implements BlockStore.
func (s *Store) Size(name string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sizes[name]
}

// Preload writes a file's contents without charging latency or counting
// operations — experiment setup.
func (s *Store) Preload(name string, blocks int64, fill func(block int64, buf []byte)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	savedCharge := s.charge
	s.charge = false
	buf := make([]byte, s.blockSize)
	for b := int64(0); b < blocks; b++ {
		if fill != nil {
			fill(b, buf)
		}
		if err := s.storeLocked(name, b, buf); err != nil {
			panic(err) // preload arguments are programmer-controlled
		}
	}
	s.charge = savedCharge
	s.reads, s.writes = 0, 0
}

// FailingStore wraps a BlockStore and injects failures: after FailAfter
// successful operations, every subsequent operation matching the enabled
// kinds returns ErrInjected. It exists for fault-injection tests — a
// manager must surface backing-store errors without corrupting frame
// accounting.
type FailingStore struct {
	Inner BlockStore
	// FailAfter is the number of operations that succeed first.
	FailAfter int64
	// FailReads and FailWrites select which operations fail.
	FailReads, FailWrites bool
	// FailOnce makes the store recover after the first injected failure:
	// both failure arms are disabled once an error has been returned, so
	// the next operation succeeds (a transient device hiccup).
	FailOnce bool
	// TornWrites makes a failing Store persist the first half of the
	// buffer before the error surfaces (a write interrupted mid-block);
	// the injected error additionally wraps ErrTornWrite.
	TornWrites bool
	// Transient marks injected errors retryable: they additionally wrap
	// ErrTransient, so manager retry-with-backoff paths engage.
	Transient bool
	ops       int64
	injected  int64
}

// ErrInjected is the failure FailingStore and the fault plane inject.
var ErrInjected = fmt.Errorf("storage: injected failure")

// ErrTransient marks a storage failure as retryable: the device or server
// hiccuped, and repeating the operation may succeed. Managers bound a
// retry-with-backoff loop on it; errors not wrapping ErrTransient are
// permanent and must propagate.
var ErrTransient = fmt.Errorf("storage: transient failure")

// ErrTornWrite marks a store failure that persisted a partial block: the
// block now holds the new prefix and the old suffix.
var ErrTornWrite = fmt.Errorf("storage: torn write")

// Injected reports how many failures have been injected.
func (f *FailingStore) Injected() int64 { return f.injected }

// inject builds the error for one injected failure and applies the
// FailOnce recovery rule.
func (f *FailingStore) inject(err error) error {
	f.injected++
	if f.FailOnce {
		f.FailReads, f.FailWrites = false, false
	}
	if f.Transient {
		err = fmt.Errorf("%w: %w", ErrTransient, err)
	}
	return err
}

// Fetch implements BlockStore.
func (f *FailingStore) Fetch(name string, block int64, buf []byte) error {
	f.ops++
	if f.FailReads && f.ops > f.FailAfter {
		return f.inject(fmt.Errorf("%w (fetch %q block %d)", ErrInjected, name, block))
	}
	return f.Inner.Fetch(name, block, buf)
}

// Store implements BlockStore.
func (f *FailingStore) Store(name string, block int64, buf []byte) error {
	f.ops++
	if f.FailWrites && f.ops > f.FailAfter {
		err := fmt.Errorf("%w (store %q block %d)", ErrInjected, name, block)
		if f.TornWrites {
			if half := len(buf) / 2; half > 0 {
				// The prefix reaches the media; the torn suffix does not.
				// (Inner.Store zero-fills past the short buffer, which is
				// the post-crash state of an unwritten tail sector.)
				if werr := f.Inner.Store(name, block, buf[:half]); werr != nil {
					return werr
				}
			}
			err = fmt.Errorf("%w: %w", ErrTornWrite, err)
		}
		return f.inject(err)
	}
	return f.Inner.Store(name, block, buf)
}

// Size implements BlockStore.
func (f *FailingStore) Size(name string) int64 { return f.Inner.Size(name) }

// BlockSize implements BlockStore.
func (f *FailingStore) BlockSize() int { return f.Inner.BlockSize() }

// Reads implements BlockStore.
func (f *FailingStore) Reads() int64 { return f.Inner.Reads() }

// Writes implements BlockStore.
func (f *FailingStore) Writes() int64 { return f.Inner.Writes() }
