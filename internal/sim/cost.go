package sim

import "time"

// CostModel holds the per-primitive virtual-time costs of the simulated
// machine. The defaults are calibrated so that the composed operation paths
// land on the paper's Table 1 measurements for a DECstation 5000/200
// (25 MHz R3000, 4 KB pages) running V++ and ULTRIX 4.1.
//
// The calibration targets are:
//
//	V++ minimal fault, faulting process    107 µs
//	V++ minimal fault, default manager     379 µs
//	V++ read 4 KB cached                   222 µs
//	V++ write 4 KB cached                  203 µs
//	Ultrix minimal fault                   175 µs
//	Ultrix user-level fault handler        152 µs
//	Ultrix read 4 KB cached                211 µs
//	Ultrix write 4 KB cached               311 µs
//
// The individual constants are estimates; the paper's claims concern which
// primitives each path composes (for example, that Ultrix pays a 75 µs page
// zeroing on every allocation and that V++ does not), and those compositions
// are what the benchmarks verify.
type CostModel struct {
	// Trap is the hardware trap plus kernel fault dispatch: saving state,
	// decoding the faulting address, and locating the segment.
	Trap time.Duration
	// KernelCall is the cost of a system call entry/exit pair.
	KernelCall time.Duration
	// Upcall is the cost of the kernel transferring control to a fault
	// handling procedure executed by the faulting process itself
	// (the efficient delivery mode of Section 2.1).
	Upcall time.Duration
	// ContextSwitch is one process context switch, paid twice when the
	// manager runs as a separate process reached over IPC.
	ContextSwitch time.Duration
	// ResumeDirect is resumption of the faulting application directly from
	// the manager without reentering the kernel (possible on the R3000).
	ResumeDirect time.Duration
	// ResumeViaKernel is resumption through the kernel, required on
	// processors (e.g. MC680x0) that must restore privileged pipeline state.
	ResumeViaKernel time.Duration
	// MigratePage is the per-page cost of the MigratePages kernel operation:
	// unhooking the frame from the source segment, updating the mapping hash
	// table and hooking it into the destination.
	MigratePage time.Duration
	// ModifyFlags is the per-call cost of ModifyPageFlags (plus a small
	// per-page component folded into MappingUpdate).
	ModifyFlags time.Duration
	// MappingUpdate is a single mapping hash-table or page-table update.
	MappingUpdate time.Duration
	// SuperpageOp is one extent-granular mapping operation: migrating or
	// re-protecting a whole aligned superpage extent through a single
	// mapping entry, whatever the extent's order. It prices like one
	// base-page migrate plus one mapping update — the point of the paper's
	// multiple page sizes is that the per-page bookkeeping disappears, so
	// the cost does not scale with 2^order. Charged only on the superpage
	// fast paths, which are off by default; no golden table composes it.
	SuperpageOp time.Duration
	// TLBFill is a kernel-handled TLB refill (simple misses are handled in
	// the kernel on the R3000 and are nearly free).
	TLBFill time.Duration
	// CopyPage is copying 4 KB of data memory-to-memory.
	CopyPage time.Duration
	// ZeroPage is zero-filling a 4 KB page. Ultrix zeroes every page it
	// allocates, for security; V++ does not unless the frame changes user.
	ZeroPage time.Duration
	// SignalDeliver is Unix signal delivery to a user handler and the
	// matching sigreturn, used by the Ultrix user-level fault handler path.
	SignalDeliver time.Duration
	// Mprotect is one mprotect system call changing one page's protection.
	Mprotect time.Duration

	// DiskAccess is a backing-store access for one 4 KB page (seek +
	// rotation + transfer on a local disk of the period).
	DiskAccess time.Duration
	// NetworkAccess is fetching one 4 KB page from a network file server
	// (the V++ machine is diskless; its files come from a DECstation 3100).
	NetworkAccess time.Duration

	// Fixed path overheads: bookkeeping each operation performs beyond the
	// shared primitives above (cache-directory lookups, argument checking,
	// buffer management). Separated out so the compositions stay explicit.

	// UIOReadExtra is the V++ UIO block-read bookkeeping.
	UIOReadExtra time.Duration
	// UIOWriteExtra is the V++ UIO block-write bookkeeping.
	UIOWriteExtra time.Duration
	// UltrixReadExtra is the Ultrix read(2) buffer-cache lookup overhead.
	UltrixReadExtra time.Duration
	// UltrixWriteExtra is the Ultrix write(2) buffer-cache overhead.
	UltrixWriteExtra time.Duration
	// UltrixFaultExtra is fixed Ultrix in-kernel fault bookkeeping.
	UltrixFaultExtra time.Duration
}

// DECstation5000 returns the cost model calibrated to the paper's hardware.
func DECstation5000() *CostModel {
	return &CostModel{
		Trap:            20 * time.Microsecond,
		KernelCall:      30 * time.Microsecond,
		Upcall:          20 * time.Microsecond,
		ContextSwitch:   115 * time.Microsecond,
		ResumeDirect:    8 * time.Microsecond,
		ResumeViaKernel: 32 * time.Microsecond,
		MigratePage:     25 * time.Microsecond,
		ModifyFlags:     10 * time.Microsecond,
		MappingUpdate:   4 * time.Microsecond,
		SuperpageOp:     29 * time.Microsecond,
		TLBFill:         2 * time.Microsecond,
		CopyPage:        145 * time.Microsecond,
		ZeroPage:        75 * time.Microsecond,
		SignalDeliver:   70 * time.Microsecond,
		Mprotect:        30 * time.Microsecond,
		DiskAccess:      16 * time.Millisecond,
		NetworkAccess:   20 * time.Millisecond,

		UIOReadExtra:     39 * time.Microsecond,
		UIOWriteExtra:    20 * time.Microsecond,
		UltrixReadExtra:  36 * time.Microsecond,
		UltrixWriteExtra: 53 * time.Microsecond,
		UltrixFaultExtra: 10 * time.Microsecond,
	}
}

// MinDeliveryLatency is the cheapest possible cross-manager delivery the
// model admits: a hardware trap plus the upcall that transfers control into
// a manager (the efficient same-process mode of §2.1). Every fault
// delivery, deletion notice and control message pays at least this much
// before any other manager can observe it, so the sharded virtual-time
// engine uses it as the conservative lookahead bound — a cross-shard event
// can never land closer to the sender's clock than this.
// 40 µs on the DECstation 5000 calibration.
func (c *CostModel) MinDeliveryLatency() time.Duration {
	return c.Trap + c.Upcall
}

// The composed paths below document, in one place, which primitives each
// measured operation is built from. The kernel and manager implementations
// charge the same primitives as they execute; these helpers exist so tests
// can assert that the implementations and the documented compositions agree.

// VppMinimalFaultSameProcess is the V++ minimal page fault handled by a
// procedure executed by the faulting process itself: trap, upcall to the
// manager procedure, one MigratePages call moving one frame from the
// manager's free-page segment, and direct resumption (R3000).
// Target: 107 µs.
func (c *CostModel) VppMinimalFaultSameProcess() time.Duration {
	return c.Trap + c.Upcall + c.KernelCall + c.MigratePage + c.MappingUpdate + c.ResumeDirect
}

// VppMinimalFaultSeparateManager is the V++ minimal fault handled by the
// default segment manager running as a separate server process: trap, a
// context switch to the manager, the migrate call, and a context switch
// back plus kernel resumption of the faulting process.
// Target: 379 µs.
func (c *CostModel) VppMinimalFaultSeparateManager() time.Duration {
	return c.Trap + 2*c.ContextSwitch + c.KernelCall + c.MigratePage + c.MappingUpdate +
		c.KernelCall + c.ResumeViaKernel + 2*c.MappingUpdate
}

// VppVectoredFaultSameProcess is n minimal same-process faults delivered
// as one vectored upcall (the concurrent scheduler's batched delivery):
// one trap and one upcall for the batch, one batched migrate call settling
// all n frames, one per-page MigratePage+MappingUpdate each, and one
// direct resumption. n=1 telescopes to VppMinimalFaultSameProcess exactly,
// which is why single-fault deliveries are charge-identical with vectoring
// on or off.
func (c *CostModel) VppVectoredFaultSameProcess(n int) time.Duration {
	return c.Trap + c.Upcall + c.KernelCall +
		time.Duration(n)*(c.MigratePage+c.MappingUpdate) + c.ResumeDirect
}

// UltrixMinimalFault is the conventional kernel-internal fault: trap,
// in-kernel allocation including the security zero-fill, page-table update
// and return from trap.
// Target: 175 µs.
func (c *CostModel) UltrixMinimalFault() time.Duration {
	return c.Trap + c.KernelCall + c.ZeroPage + c.MappingUpdate*2 + c.ResumeViaKernel + c.UltrixFaultExtra
}

// UltrixUserFaultHandler is a fault on a protected page delivered to a user
// signal handler that changes the page protection with mprotect and returns:
// trap, signal delivery, mprotect, sigreturn path.
// Target: 152 µs.
func (c *CostModel) UltrixUserFaultHandler() time.Duration {
	return c.Trap + c.SignalDeliver + c.Mprotect + c.ResumeViaKernel
}

// VppRead4K is a cached-file block read through the UIO block interface:
// one kernel operation plus the data copy to the caller's buffer.
// Target: 222 µs.
func (c *CostModel) VppRead4K() time.Duration {
	return c.KernelCall + c.CopyPage + 2*c.MappingUpdate + c.UIOReadExtra
}

// VppWrite4K is a cached-file block write through the UIO block interface.
// Writes are slightly cheaper than reads here because the written page's
// mapping is already write-enabled for the cache.
// Target: 203 µs.
func (c *CostModel) VppWrite4K() time.Duration {
	return c.KernelCall + c.CopyPage + 2*c.MappingUpdate + c.UIOWriteExtra
}

// UltrixRead4K is the read system call for 4 KB of a cached file.
// Target: 211 µs.
func (c *CostModel) UltrixRead4K() time.Duration {
	return c.KernelCall + c.CopyPage + c.UltrixReadExtra
}

// UltrixWrite4K is the write system call for 4 KB of a cached file. Ultrix
// pays a buffer allocation with zero-fill on the write path.
// Target: 311 µs.
func (c *CostModel) UltrixWrite4K() time.Duration {
	return c.KernelCall + c.CopyPage + c.ZeroPage + c.MappingUpdate*2 + c.UltrixWriteExtra
}
