// Package sim provides the simulation substrate used by every other package
// in this repository: a virtual clock, a deterministic pseudo-random number
// generator, a machine cost model calibrated to the paper's DECstation
// 5000/200 measurements, response-time statistics, and a process-oriented
// discrete-event scheduler.
//
// The paper (Harty & Cheriton, ASPLOS 1992) measures real hardware; we
// cannot control physical page frames from Go, so all experiments run on
// virtual time. Durations are expressed with time.Duration but never touch
// the wall clock, so every run is exactly reproducible.
package sim

import (
	"fmt"
	"time"
)

// Clock is a virtual clock. It only moves when some simulated activity
// charges time to it. The zero value is a clock at time zero, ready to use.
type Clock struct {
	now time.Duration
}

// Now returns the current virtual time.
func (c *Clock) Now() time.Duration { return c.now }

// Advance moves the clock forward by d. Advancing by a negative duration
// panics: virtual time never runs backwards.
func (c *Clock) Advance(d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("sim: clock advanced by negative duration %v", d))
	}
	c.now += d
}

// AdvanceTo moves the clock forward to t. It panics if t is in the past.
func (c *Clock) AdvanceTo(t time.Duration) {
	if t < c.now {
		panic(fmt.Sprintf("sim: clock moved backwards from %v to %v", c.now, t))
	}
	c.now = t
}

// Reset returns the clock to time zero.
func (c *Clock) Reset() { c.now = 0 }

// Stopwatch measures an interval of virtual time against a Clock.
type Stopwatch struct {
	clock *Clock
	start time.Duration
}

// NewStopwatch starts a stopwatch at the clock's current time.
func NewStopwatch(c *Clock) Stopwatch {
	return Stopwatch{clock: c, start: c.Now()}
}

// Elapsed reports the virtual time since the stopwatch started.
func (s Stopwatch) Elapsed() time.Duration { return s.clock.Now() - s.start }
