// Package sim provides the simulation substrate used by every other package
// in this repository: a virtual clock, a deterministic pseudo-random number
// generator, a machine cost model calibrated to the paper's DECstation
// 5000/200 measurements, response-time statistics, and a process-oriented
// discrete-event scheduler.
//
// The paper (Harty & Cheriton, ASPLOS 1992) measures real hardware; we
// cannot control physical page frames from Go, so all experiments run on
// virtual time. Durations are expressed with time.Duration but never touch
// the wall clock, so every run is exactly reproducible.
package sim

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Clock is a virtual clock. It only moves when some simulated activity
// charges time to it. The zero value is a clock at time zero, ready to use.
//
// The counter is atomic so concurrent managers (the kernel's concurrent
// delivery scheduler) can charge costs without a lock; under the serial
// scheduler the atomics are uncontended and the observable sequence of
// times is exactly that of a plain counter, so determinism is unaffected.
type Clock struct {
	now atomic.Int64 // nanoseconds
}

// Now returns the current virtual time.
func (c *Clock) Now() time.Duration { return time.Duration(c.now.Load()) }

// Advance moves the clock forward by d. Advancing by a negative duration
// panics: virtual time never runs backwards.
func (c *Clock) Advance(d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("sim: clock advanced by negative duration %v", d))
	}
	c.now.Add(int64(d))
}

// AdvanceTo moves the clock forward to t. It panics if t is in the past.
func (c *Clock) AdvanceTo(t time.Duration) {
	for {
		now := c.now.Load()
		if int64(t) < now {
			panic(fmt.Sprintf("sim: clock moved backwards from %v to %v", time.Duration(now), t))
		}
		if c.now.CompareAndSwap(now, int64(t)) {
			return
		}
	}
}

// Reset returns the clock to time zero.
func (c *Clock) Reset() { c.now.Store(0) }

// Stopwatch measures an interval of virtual time against a Clock.
type Stopwatch struct {
	clock *Clock
	start time.Duration
}

// NewStopwatch starts a stopwatch at the clock's current time.
func NewStopwatch(c *Clock) Stopwatch {
	return Stopwatch{clock: c, start: c.Now()}
}

// Elapsed reports the virtual time since the stopwatch started.
func (s Stopwatch) Elapsed() time.Duration { return s.clock.Now() - s.start }
