package sim

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestClockAdvance(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatalf("zero clock at %v, want 0", c.Now())
	}
	c.Advance(3 * time.Microsecond)
	c.Advance(2 * time.Millisecond)
	if got, want := c.Now(), 2*time.Millisecond+3*time.Microsecond; got != want {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
	c.AdvanceTo(5 * time.Millisecond)
	if c.Now() != 5*time.Millisecond {
		t.Fatalf("AdvanceTo: Now() = %v", c.Now())
	}
}

func TestClockNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Advance(-1) did not panic")
		}
	}()
	var c Clock
	c.Advance(-1)
}

func TestClockBackwardsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AdvanceTo into the past did not panic")
		}
	}()
	var c Clock
	c.Advance(time.Second)
	c.AdvanceTo(time.Millisecond)
}

func TestStopwatch(t *testing.T) {
	var c Clock
	sw := NewStopwatch(&c)
	c.Advance(42 * time.Microsecond)
	if sw.Elapsed() != 42*time.Microsecond {
		t.Fatalf("Elapsed = %v", sw.Elapsed())
	}
}

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed streams diverged at %d", i)
		}
	}
	c := NewRNG(8)
	same := 0
	a = NewRNG(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different-seed streams coincided %d times", same)
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(1)
	f := func(n uint16) bool {
		m := int(n%1000) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(2)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestRNGExpMean(t *testing.T) {
	r := NewRNG(3)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Exp(25.0)
	}
	mean := sum / n
	if mean < 24 || mean > 26 {
		t.Fatalf("Exp(25) sample mean = %v, want ~25", mean)
	}
}

func TestRNGPerm(t *testing.T) {
	r := NewRNG(4)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("Perm not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestSeriesStats(t *testing.T) {
	var s Series
	for _, ms := range []int{10, 20, 30, 40, 50} {
		s.Add(time.Duration(ms) * time.Millisecond)
	}
	if s.Count() != 5 {
		t.Fatalf("Count = %d", s.Count())
	}
	if s.Mean() != 30*time.Millisecond {
		t.Fatalf("Mean = %v", s.Mean())
	}
	if s.Max() != 50*time.Millisecond {
		t.Fatalf("Max = %v", s.Max())
	}
	if s.Min() != 10*time.Millisecond {
		t.Fatalf("Min = %v", s.Min())
	}
	if got := s.Percentile(50); got != 30*time.Millisecond {
		t.Fatalf("p50 = %v", got)
	}
	if got := s.Percentile(100); got != 50*time.Millisecond {
		t.Fatalf("p100 = %v", got)
	}
}

func TestSeriesEmpty(t *testing.T) {
	var s Series
	if s.Mean() != 0 || s.Max() != 0 || s.Percentile(99) != 0 || s.StdDev() != 0 {
		t.Fatal("empty series should report zeros")
	}
}

func TestSeriesPercentileSortedOnce(t *testing.T) {
	var s Series
	for i := 100; i > 0; i-- {
		s.Add(time.Duration(i) * time.Microsecond)
	}
	if got := s.Percentile(1); got != 1*time.Microsecond {
		t.Fatalf("p1 = %v", got)
	}
	s.Add(200 * time.Microsecond) // invalidates sort
	if got := s.Percentile(100); got != 200*time.Microsecond {
		t.Fatalf("p100 after Add = %v", got)
	}
}

// Table 1 calibration: every composed path must land exactly on the paper's
// measurement.
func TestCostModelTable1Calibration(t *testing.T) {
	c := DECstation5000()
	cases := []struct {
		name string
		got  time.Duration
		want time.Duration
	}{
		{"V++ minimal fault, faulting process", c.VppMinimalFaultSameProcess(), 107 * time.Microsecond},
		{"V++ minimal fault, default manager", c.VppMinimalFaultSeparateManager(), 379 * time.Microsecond},
		{"Ultrix minimal fault", c.UltrixMinimalFault(), 175 * time.Microsecond},
		{"Ultrix user-level fault handler", c.UltrixUserFaultHandler(), 152 * time.Microsecond},
		{"V++ read 4KB", c.VppRead4K(), 222 * time.Microsecond},
		{"V++ write 4KB", c.VppWrite4K(), 203 * time.Microsecond},
		{"Ultrix read 4KB", c.UltrixRead4K(), 211 * time.Microsecond},
		{"Ultrix write 4KB", c.UltrixWrite4K(), 311 * time.Microsecond},
	}
	for _, tc := range cases {
		if tc.got != tc.want {
			t.Errorf("%s: composed cost %v, want %v", tc.name, tc.got, tc.want)
		}
	}
}

// The paper attributes most of the V++/Ultrix minimal-fault difference to
// Ultrix's security page zeroing (75 µs).
func TestZeroFillDominatesFaultGap(t *testing.T) {
	c := DECstation5000()
	gap := c.UltrixMinimalFault() - c.VppMinimalFaultSameProcess()
	if gap != 68*time.Microsecond {
		t.Fatalf("fault gap = %v, want 68µs (paper: 175-107)", gap)
	}
	if c.ZeroPage != 75*time.Microsecond {
		t.Fatalf("ZeroPage = %v, want 75µs", c.ZeroPage)
	}
}

func TestEnvTimers(t *testing.T) {
	var c Clock
	e := NewEnv(&c)
	var order []int
	e.At(3*time.Second, func() { order = append(order, 3) })
	e.At(1*time.Second, func() { order = append(order, 1) })
	e.At(2*time.Second, func() { order = append(order, 2) })
	if blocked := e.Run(); blocked != 0 {
		t.Fatalf("blocked = %d", blocked)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("timer order = %v", order)
	}
	if c.Now() != 3*time.Second {
		t.Fatalf("clock = %v", c.Now())
	}
}

func TestEnvProcSleep(t *testing.T) {
	var c Clock
	e := NewEnv(&c)
	var trace []string
	e.Go("a", func(p *Proc) {
		trace = append(trace, "a0")
		p.Sleep(10 * time.Millisecond)
		trace = append(trace, "a1")
	})
	e.Go("b", func(p *Proc) {
		trace = append(trace, "b0")
		p.Sleep(5 * time.Millisecond)
		trace = append(trace, "b1")
	})
	e.Run()
	want := []string{"a0", "b0", "b1", "a1"}
	if len(trace) != len(want) {
		t.Fatalf("trace = %v", trace)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
	if c.Now() != 10*time.Millisecond {
		t.Fatalf("clock = %v", c.Now())
	}
}

func TestEnvParkWake(t *testing.T) {
	var c Clock
	e := NewEnv(&c)
	var woke time.Duration
	var sleeper *Proc
	done := false
	e.Go("sleeper", func(p *Proc) {
		sleeper = p
		p.Park()
		woke = p.Now()
		done = true
	})
	e.Go("waker", func(p *Proc) {
		p.Sleep(7 * time.Millisecond)
		p.Env().Wake(sleeper)
	})
	if blocked := e.Run(); blocked != 0 {
		t.Fatalf("blocked = %d", blocked)
	}
	if !done || woke != 7*time.Millisecond {
		t.Fatalf("done=%v woke=%v", done, woke)
	}
}

func TestEnvDetectsPermanentBlock(t *testing.T) {
	var c Clock
	e := NewEnv(&c)
	e.Go("stuck", func(p *Proc) { p.Park() })
	if blocked := e.Run(); blocked != 1 {
		t.Fatalf("blocked = %d, want 1", blocked)
	}
}

func TestResourceFIFOAndCapacity(t *testing.T) {
	var c Clock
	e := NewEnv(&c)
	r := NewResource(e, 2)
	var order []string
	worker := func(name string, hold time.Duration) func(*Proc) {
		return func(p *Proc) {
			r.Acquire(p)
			order = append(order, name+"+")
			p.Sleep(hold)
			order = append(order, name+"-")
			r.Release()
		}
	}
	e.Go("w1", worker("w1", 10*time.Millisecond))
	e.Go("w2", worker("w2", 10*time.Millisecond))
	e.Go("w3", worker("w3", 10*time.Millisecond))
	e.Go("w4", worker("w4", 10*time.Millisecond))
	if blocked := e.Run(); blocked != 0 {
		t.Fatalf("blocked = %d", blocked)
	}
	// w1 and w2 run immediately; w3 and w4 wait for releases, in order.
	// w2's own sleep-end event was scheduled before w3's grant event, so at
	// t=10ms w2 finishes before w3 starts.
	want := []string{"w1+", "w2+", "w1-", "w2-", "w3+", "w4+", "w3-", "w4-"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if c.Now() != 20*time.Millisecond {
		t.Fatalf("makespan = %v, want 20ms (2 waves of 10ms on 2 units)", c.Now())
	}
	if r.InUse() != 0 || r.QueueLen() != 0 {
		t.Fatalf("resource not drained: inUse=%d queue=%d", r.InUse(), r.QueueLen())
	}
}

func TestResourceWaitStats(t *testing.T) {
	var c Clock
	e := NewEnv(&c)
	r := NewResource(e, 1)
	e.Go("a", func(p *Proc) { r.Use(p, func() { p.Sleep(4 * time.Millisecond) }) })
	e.Go("b", func(p *Proc) { r.Use(p, func() { p.Sleep(4 * time.Millisecond) }) })
	e.Run()
	if r.WaitStats().Count() != 2 {
		t.Fatalf("wait samples = %d", r.WaitStats().Count())
	}
	if r.WaitStats().Max() != 4*time.Millisecond {
		t.Fatalf("max wait = %v, want 4ms", r.WaitStats().Max())
	}
}

func TestResourceOverReleasePanics(t *testing.T) {
	var c Clock
	e := NewEnv(&c)
	r := NewResource(e, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("over-release did not panic")
		}
	}()
	r.Release()
}

func TestEnvManyProcsDeterministic(t *testing.T) {
	run := func() (time.Duration, int64) {
		var c Clock
		e := NewEnv(&c)
		r := NewResource(e, 3)
		rng := NewRNG(99)
		var total Counter
		for i := 0; i < 200; i++ {
			d := time.Duration(rng.Intn(1000)+1) * time.Microsecond
			e.GoAt(time.Duration(rng.Intn(5000))*time.Microsecond, "p", func(p *Proc) {
				r.Acquire(p)
				p.Sleep(d)
				r.Release()
				total.Inc()
			})
		}
		e.Run()
		return c.Now(), total.Value()
	}
	t1, n1 := run()
	t2, n2 := run()
	if n1 != 200 || n2 != 200 {
		t.Fatalf("completions %d, %d", n1, n2)
	}
	if t1 != t2 {
		t.Fatalf("non-deterministic makespan: %v vs %v", t1, t2)
	}
}

func TestEnvAtInPastPanics(t *testing.T) {
	var c Clock
	e := NewEnv(&c)
	c.Advance(time.Second)
	defer func() {
		if recover() == nil {
			t.Fatal("At in the past did not panic")
		}
	}()
	e.At(time.Millisecond, func() {})
}

func TestEnvGoAtInPastPanics(t *testing.T) {
	var c Clock
	e := NewEnv(&c)
	c.Advance(time.Second)
	defer func() {
		if recover() == nil {
			t.Fatal("GoAt in the past did not panic")
		}
	}()
	e.GoAt(time.Millisecond, "p", func(p *Proc) {})
}

func TestRunUntilStopsAtDeadline(t *testing.T) {
	var c Clock
	e := NewEnv(&c)
	var fired []int
	e.At(1*time.Second, func() { fired = append(fired, 1) })
	e.At(3*time.Second, func() { fired = append(fired, 3) })
	e.RunUntil(2 * time.Second)
	if len(fired) != 1 || fired[0] != 1 {
		t.Fatalf("fired = %v", fired)
	}
	if c.Now() != 1*time.Second {
		t.Fatalf("clock = %v", c.Now())
	}
	// The rest still runs later.
	e.Run()
	if len(fired) != 2 {
		t.Fatalf("fired = %v", fired)
	}
}

func TestProcSleepNegativePanics(t *testing.T) {
	var c Clock
	e := NewEnv(&c)
	panicked := false
	e.Go("p", func(p *Proc) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		p.Sleep(-1)
	})
	e.Run()
	if !panicked {
		t.Fatal("negative sleep did not panic")
	}
}

func TestResourceUseReleasesOnReturn(t *testing.T) {
	var c Clock
	e := NewEnv(&c)
	r := NewResource(e, 1)
	e.Go("a", func(p *Proc) {
		r.Use(p, func() { p.Sleep(time.Millisecond) })
		if r.InUse() != 0 {
			t.Error("Use did not release")
		}
	})
	e.Run()
}

// Percentile agrees with a reference implementation on random data.
func TestSeriesPercentileProperty(t *testing.T) {
	rng := NewRNG(17)
	f := func(n uint8) bool {
		var s Series
		vals := make([]time.Duration, 0, int(n)+1)
		for i := 0; i <= int(n); i++ {
			d := time.Duration(rng.Intn(10000)) * time.Microsecond
			s.Add(d)
			vals = append(vals, d)
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		for _, p := range []float64{1, 25, 50, 90, 99, 100} {
			rank := int(math.Ceil(p / 100 * float64(len(vals))))
			if rank < 1 {
				rank = 1
			}
			if s.Percentile(p) != vals[rank-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
