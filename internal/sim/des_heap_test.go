package sim

import (
	"math/rand"
	"testing"
	"time"
)

// TestEventHeapOrdering pushes events in random order and checks they pop
// in (at, seq) order — the property the simulator's determinism rests on.
func TestEventHeapOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(1992))
	for trial := 0; trial < 50; trial++ {
		var h eventHeap
		n := rng.Intn(300) + 1
		for seq := int64(0); seq < int64(n); seq++ {
			// Duplicate timestamps are common (Wake schedules at "now"), so
			// draw from a small range to force seq tie-breaks.
			h.push(event{at: time.Duration(rng.Intn(16)), seq: seq})
		}
		var prev event
		for i := 0; i < n; i++ {
			ev := h.pop()
			if i > 0 {
				if ev.at < prev.at || (ev.at == prev.at && ev.seq < prev.seq) {
					t.Fatalf("trial %d: popped (%v,%d) after (%v,%d)", trial, ev.at, ev.seq, prev.at, prev.seq)
				}
			}
			prev = ev
		}
		if len(h) != 0 {
			t.Fatalf("heap not drained: %d left", len(h))
		}
	}
}

// TestEventHeapPreSized checks the first push installs the pre-sized
// backing array so steady-state simulations never grow the queue.
func TestEventHeapPreSized(t *testing.T) {
	e := NewEnv(&Clock{})
	e.At(0, func() {})
	if cap(e.shards[0].events) < eventHeapInitialCap {
		t.Fatalf("event queue capacity %d, want >= %d", cap(e.shards[0].events), eventHeapInitialCap)
	}
}

// FuzzEventHeap drives the heap with a byte-encoded op stream — odd bytes
// pop, even bytes push at time b>>1 (a deliberately tiny timestamp range, so
// equal-`at` seq tie-breaks dominate) — and checks every pop against a
// linear-scan reference minimum. The checked-in corpus seeds the two cases
// that matter most: dense equal-timestamp ties, and a >4x-initial-capacity
// burst drained back down, which walks the pop-side shrink path.
func FuzzEventHeap(f *testing.F) {
	f.Add([]byte{6, 6, 6, 6, 2, 1, 1, 1, 1, 1, 4, 1})
	f.Fuzz(func(t *testing.T, ops []byte) {
		var h eventHeap
		var ref []event
		var seq int64
		for _, b := range ops {
			if b&1 == 1 && len(ref) > 0 {
				min := 0
				for i := 1; i < len(ref); i++ {
					if ref[i].at < ref[min].at ||
						(ref[i].at == ref[min].at && ref[i].seq < ref[min].seq) {
						min = i
					}
				}
				want := ref[min]
				ref = append(ref[:min], ref[min+1:]...)
				got := h.pop()
				if got.at != want.at || got.seq != want.seq {
					t.Fatalf("pop = (%v,%d), want (%v,%d)", got.at, got.seq, want.at, want.seq)
				}
			} else if b&1 == 0 {
				ev := event{at: time.Duration(b >> 1), seq: seq}
				seq++
				h.push(ev)
				ref = append(ref, ev)
			}
		}
		if len(h) != len(ref) {
			t.Fatalf("heap len %d, reference len %d", len(h), len(ref))
		}
		if cap(h) > 0 && cap(h) < len(h) {
			t.Fatalf("impossible capacity %d < len %d", cap(h), len(h))
		}
		// Drain whatever remains in (at, seq) order.
		var prev event
		for i := 0; len(h) > 0; i++ {
			ev := h.pop()
			if i > 0 && (ev.at < prev.at || (ev.at == prev.at && ev.seq < prev.seq)) {
				t.Fatalf("drain popped (%v,%d) after (%v,%d)", ev.at, ev.seq, prev.at, prev.seq)
			}
			prev = ev
		}
	})
}
