package sim

import (
	"math/rand"
	"testing"
	"time"
)

// TestEventHeapOrdering pushes events in random order and checks they pop
// in (at, seq) order — the property the simulator's determinism rests on.
func TestEventHeapOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(1992))
	for trial := 0; trial < 50; trial++ {
		var h eventHeap
		n := rng.Intn(300) + 1
		for seq := int64(0); seq < int64(n); seq++ {
			// Duplicate timestamps are common (Wake schedules at "now"), so
			// draw from a small range to force seq tie-breaks.
			h.push(event{at: time.Duration(rng.Intn(16)), seq: seq})
		}
		var prev event
		for i := 0; i < n; i++ {
			ev := h.pop()
			if i > 0 {
				if ev.at < prev.at || (ev.at == prev.at && ev.seq < prev.seq) {
					t.Fatalf("trial %d: popped (%v,%d) after (%v,%d)", trial, ev.at, ev.seq, prev.at, prev.seq)
				}
			}
			prev = ev
		}
		if len(h) != 0 {
			t.Fatalf("heap not drained: %d left", len(h))
		}
	}
}

// TestEventHeapPreSized checks the first push installs the pre-sized
// backing array so steady-state simulations never grow the queue.
func TestEventHeapPreSized(t *testing.T) {
	e := NewEnv(&Clock{})
	e.At(0, func() {})
	if cap(e.events) < eventHeapInitialCap {
		t.Fatalf("event queue capacity %d, want >= %d", cap(e.events), eventHeapInitialCap)
	}
}
