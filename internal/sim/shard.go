package sim

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// This file is the sharded virtual-time engine: the conservative parallel
// discrete-event simulation (windowed / YAWNS-style) drain that lets
// per-manager event queues advance concurrently.
//
// The safety argument is the classic conservative one. Let GVT be the
// minimum next-event time across all shards and L the lookahead — the hard
// lower bound on how far in the future any cross-shard message may land
// (CostModel.MinDeliveryLatency: no manager can observe another manager's
// action in less than a trap plus an upcall). Every event executed in the
// window [GVT, GVT+L) has timestamp t >= GVT, so any message it sends
// arrives at t+L >= GVT+L — strictly after the window. Shards therefore
// drain their own queues for one window with no coordination at all;
// cross-shard sends buffer into the destination's inbox and merge at the
// window barrier in a deterministic total order (at, source shard, source
// sequence), the sharded analogue of the serial heap's (at, seq) order.
//
// With one shard the window loop pops the same heap in the same (at, seq)
// order the serial engine does, advancing the same clock — which is why
// reproduce.golden stays byte-identical under the sharded engine.

// ---------------------------------------------------------------------------
// Boot-time engine selection

// bootSharded selects the engine NewEnv installs, so whole-program runs
// (cmd/reproduce -timeengine sharded) can flip every environment they build
// without threading configuration through each experiment. Set it from the
// main goroutine before building environments.
var bootSharded bool

// SetBootTimeEngine selects the virtual-time engine ("serial" or "sharded")
// that NewEnv uses for subsequently built environments.
func SetBootTimeEngine(mode string) error {
	switch mode {
	case "", "serial":
		bootSharded = false
	case "sharded":
		bootSharded = true
	default:
		return fmt.Errorf("sim: unknown time engine %q (want serial or sharded)", mode)
	}
	return nil
}

// BootTimeEngine reports the boot-time engine selection.
func BootTimeEngine() string {
	if bootSharded {
		return "sharded"
	}
	return "serial"
}

// ---------------------------------------------------------------------------
// Shard

// Shard is one partition of a sharded environment: an event heap, a local
// clock, and the parked-process rendezvous for the simulated processes
// pinned to it. During a lookahead window each shard is drained by exactly
// one goroutine, so none of its fields need locks except the inbox, which
// other shards append cross-shard sends to.
type Shard struct {
	env   *Env
	id    int
	clock *Clock

	events eventHeap
	seq    int64

	parked  chan struct{} // signalled when the running proc parks or finishes
	active  int           // procs started and not yet finished
	blocked int           // procs parked with no pending wake event

	processed int64 // events dispatched, for model-throughput metrics

	// sendSeq counts this shard's outbound cross-shard sends; it breaks
	// timestamp ties deterministically at the merge barrier.
	sendSeq int64

	// inbox buffers events other shards send here during a window, merged
	// into the heap at the window barrier.
	inboxMu sync.Mutex
	inbox   []inbound
}

// inbound is a cross-shard event waiting at the merge barrier.
type inbound struct {
	at     time.Duration
	src    int
	srcSeq int64
	fn     func()
}

// ID reports the shard's index within its environment.
func (s *Shard) ID() int { return s.id }

// Clock returns the shard's local clock (the environment's global clock for
// shard 0). Clocks are atomic, so other shards may read a horizon from it
// concurrently.
func (s *Shard) Clock() *Clock { return s.clock }

// Now returns the shard's current local virtual time.
func (s *Shard) Now() time.Duration { return s.clock.Now() }

// push assigns the next local sequence number and queues the event.
func (s *Shard) push(ev event) {
	if s.events == nil {
		s.events = make(eventHeap, 0, eventHeapInitialCap)
	}
	s.seq++
	ev.seq = s.seq
	s.events.push(ev)
}

// At schedules fn to run on this shard at absolute local virtual time t
// (which must not be in the past). fn runs in the shard's drain goroutine
// and must not block.
func (s *Shard) At(t time.Duration, fn func()) {
	if t < s.clock.Now() {
		panic(fmt.Sprintf("sim: event scheduled in the past (%v < %v)", t, s.clock.Now()))
	}
	s.push(event{at: t, fn: fn})
}

// After schedules fn to run d from the shard's current local time.
func (s *Shard) After(d time.Duration, fn func()) { s.At(s.clock.Now()+d, fn) }

// Go starts a new simulated process on this shard running body. The process
// begins at the shard's current virtual time, after the caller yields to
// the scheduler.
func (s *Shard) Go(name string, body func(p *Proc)) *Proc {
	return s.GoAt(s.clock.Now(), name, body)
}

// GoAt is like Go but the process starts at absolute local virtual time t.
func (s *Shard) GoAt(t time.Duration, name string, body func(p *Proc)) *Proc {
	if t < s.clock.Now() {
		panic("sim: process scheduled to start in the past")
	}
	p := &Proc{shard: s, resume: make(chan struct{}), name: name}
	s.active++
	go func() {
		<-p.resume // wait for first dispatch
		body(p)
		s.active--
		s.parked <- struct{}{} // signal completion to the scheduler
	}()
	s.push(event{at: t, proc: p})
	return p
}

// Wake schedules parked process q to resume at q's shard's current virtual
// time. The caller must be running on q's shard.
func (s *Shard) Wake(q *Proc) {
	t := q.shard
	t.blocked--
	t.push(event{at: t.clock.Now(), proc: q})
}

// Send schedules fn to run on shard dst at absolute time at (dst's local
// clock). A same-shard send is an ordinary At. A cross-shard send must
// respect the conservative lookahead: at least the environment's lookahead
// past this shard's current time — the virtual-time analogue of "no manager
// observes another manager's action in less than the minimum delivery
// latency". The event buffers in dst's inbox and merges at the next window
// barrier, ordered by (at, source shard, source sequence).
func (s *Shard) Send(dst *Shard, at time.Duration, fn func()) {
	if dst.env != s.env {
		panic("sim: cross-environment send")
	}
	if dst == s {
		s.At(at, fn)
		return
	}
	if horizon := s.clock.Now() + s.env.lookahead; at < horizon {
		panic(fmt.Sprintf("sim: cross-shard send below the lookahead horizon (at %v < %v, lookahead %v)",
			at, horizon, s.env.lookahead))
	}
	s.sendSeq++
	in := inbound{at: at, src: s.id, srcSeq: s.sendSeq, fn: fn}
	dst.inboxMu.Lock()
	dst.inbox = append(dst.inbox, in)
	dst.inboxMu.Unlock()
}

// dispatch runs one popped event: resume its process and wait for the park,
// or invoke the timer callback.
func (s *Shard) dispatch(ev event) {
	s.processed++
	if ev.proc != nil {
		ev.proc.resume <- struct{}{}
		<-s.parked // run until it parks or finishes
	} else {
		ev.fn()
	}
}

// drainSerial is the serial engine's loop, verbatim: pop in (at, seq) order
// through the deadline, advancing the clock to each event.
func (s *Shard) drainSerial(deadline time.Duration) {
	for len(s.events) > 0 {
		if s.events[0].at > deadline {
			break
		}
		ev := s.events.pop()
		s.clock.AdvanceTo(ev.at)
		s.dispatch(ev)
	}
}

// drainWindow drains this shard's events with timestamps strictly below
// bound. Events scheduled during the window (wakes, sleeps) that land below
// bound run within it; cross-shard arrivals cannot land below bound, by the
// lookahead argument at the top of the file.
func (s *Shard) drainWindow(bound time.Duration) {
	for len(s.events) > 0 && s.events[0].at < bound {
		ev := s.events.pop()
		s.clock.AdvanceTo(ev.at)
		s.dispatch(ev)
	}
}

// ---------------------------------------------------------------------------
// Windowed run loop

// nextEventTime reports the minimum next-event time across all shards — the
// GVT of the conservative window — and whether any event is pending.
func (e *Env) nextEventTime() (time.Duration, bool) {
	var gvt time.Duration
	any := false
	for _, s := range e.shards {
		if len(s.events) == 0 {
			continue
		}
		if !any || s.events[0].at < gvt {
			gvt = s.events[0].at
		}
		any = true
	}
	return gvt, any
}

// runWindows is the sharded engine's drive loop: compute the window
// [GVT, min(GVT+lookahead, deadline+1)), drain every shard with runnable
// events concurrently, then merge the cross-shard inboxes at the barrier.
func (e *Env) runWindows(deadline time.Duration) int {
	for {
		gvt, any := e.nextEventTime()
		if !any || gvt > deadline {
			break
		}
		bound := gvt + e.lookahead
		if bound <= gvt {
			bound = gvt + 1 // guard a zero lookahead: always make progress
		}
		if bound > deadline+1 {
			bound = deadline + 1
		}
		e.windows++
		e.active = e.active[:0]
		for _, s := range e.shards {
			if len(s.events) > 0 && s.events[0].at < bound {
				e.active = append(e.active, s)
			}
		}
		if len(e.active) == 1 {
			e.active[0].drainWindow(bound)
		} else {
			var wg sync.WaitGroup
			for _, s := range e.active {
				wg.Add(1)
				go func(s *Shard) {
					defer wg.Done()
					s.drainWindow(bound)
				}(s)
			}
			wg.Wait()
		}
		e.mergeInboxes()
	}
	blocked := 0
	for _, s := range e.shards {
		blocked += s.blocked
	}
	return blocked
}

// mergeInboxes folds every shard's buffered cross-shard arrivals into its
// heap at the window barrier. Arrivals are ordered by (at, source shard,
// source sequence) before local sequence numbers are assigned, so the total
// order — and therefore the run — is deterministic regardless of how the
// window's shard goroutines interleaved on the wall clock. It runs with the
// window goroutines quiesced, so no inbox lock is needed.
func (e *Env) mergeInboxes() {
	for _, s := range e.shards {
		if len(s.inbox) == 0 {
			continue
		}
		in := s.inbox
		sort.Slice(in, func(i, j int) bool {
			if in[i].at != in[j].at {
				return in[i].at < in[j].at
			}
			if in[i].src != in[j].src {
				return in[i].src < in[j].src
			}
			return in[i].srcSeq < in[j].srcSeq
		})
		for i := range in {
			if in[i].at < s.clock.Now() {
				// Unreachable if the lookahead bound is sound; a violation
				// here means an event was delivered inside its send window.
				panic(fmt.Sprintf("sim: shard %d merged event at %v behind its clock %v",
					s.id, in[i].at, s.clock.Now()))
			}
			s.push(event{at: in[i].at, fn: in[i].fn})
			s.inbox[i] = inbound{}
		}
		s.inbox = s.inbox[:0]
	}
}
