package sim

import "math"

// RNG is a small, fast, deterministic pseudo-random number generator
// (splitmix64). Every stochastic element of the simulation draws from an RNG
// seeded explicitly, so experiment runs are exactly reproducible. We do not
// use math/rand because its global state and historical algorithm changes
// across Go releases would make results drift between toolchains.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Two generators with the same
// seed produce identical streams.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Exp returns an exponentially distributed float64 with the given mean.
// It is used for Poisson arrival processes (the paper's 40 transactions per
// second arrival rate).
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Fork derives an independent generator from this one. Streams from the
// parent and child do not overlap in practice; this is used to give each
// simulated process its own stream without coupling their draws.
func (r *RNG) Fork() *RNG {
	return NewRNG(r.Uint64() ^ 0xd1b54a32d192ed03)
}
