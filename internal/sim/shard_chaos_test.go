package sim

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// TestChaosShardedTimeHorizons hammers the conservative-lookahead invariant:
// across many seeded runs with adversarial cross-shard traffic — every send
// aimed at exactly the lookahead horizon, the closest the contract allows —
// no shard may ever observe a cross-shard event earlier than its send
// horizon, and every shard clock must advance monotonically. Runs in the
// chaos stage of scripts/check.sh under -race, where a window goroutine
// leaking past the merge barrier would also trip the detector.
func TestChaosShardedTimeHorizons(t *testing.T) {
	const shards = 4
	for seed := uint64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			e := NewShardedEnv(&Clock{}, shards, 0)
			L := e.Lookahead()
			var sends, recvs atomic.Int64
			lastSeen := make([]time.Duration, shards) // per shard, touched only by its drain goroutine
			for i := 0; i < shards; i++ {
				i := i
				sh := e.Shard(i)
				for pid := 0; pid < 4; pid++ {
					rng := NewRNG(seed*1000 + uint64(i*32+pid))
					sh.Go(fmt.Sprintf("s%d-p%d", i, pid), func(p *Proc) {
						for step := 0; step < 200; step++ {
							p.Sleep(time.Duration(rng.Intn(80)) * time.Microsecond)
							now := p.Now()
							if now < lastSeen[i] {
								t.Errorf("shard %d clock went backwards: %v after %v", i, now, lastSeen[i])
							}
							lastSeen[i] = now
							if step%4 == 0 {
								dst := e.Shard((i + 1 + rng.Intn(shards-1)) % shards)
								sendTime, horizon := now, now+L
								sends.Add(1)
								p.Shard().Send(dst, horizon, func() {
									recvs.Add(1)
									if got := dst.Now(); got < sendTime+L {
										t.Errorf("shard %d observed event from shard %d at %v, horizon %v",
											dst.ID(), i, got, sendTime+L)
									}
								})
							}
						}
					})
				}
			}
			if blocked := e.Run(); blocked != 0 {
				t.Fatalf("blocked procs: %d", blocked)
			}
			if sends.Load() == 0 || sends.Load() != recvs.Load() {
				t.Fatalf("sends %d, recvs %d", sends.Load(), recvs.Load())
			}
			if e.Windows() == 0 {
				t.Fatal("windowed engine executed zero windows")
			}
		})
	}
}
