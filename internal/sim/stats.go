package sim

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Series accumulates duration samples (e.g. transaction response times) and
// reports summary statistics. The zero value is an empty series ready to use.
type Series struct {
	samples []time.Duration
	sorted  bool
	sum     time.Duration
	max     time.Duration
	min     time.Duration
}

// Add records one sample.
func (s *Series) Add(d time.Duration) {
	if len(s.samples) == 0 || d < s.min {
		s.min = d
	}
	if d > s.max {
		s.max = d
	}
	s.sum += d
	s.samples = append(s.samples, d)
	s.sorted = false
}

// Count reports the number of samples recorded.
func (s *Series) Count() int { return len(s.samples) }

// Mean reports the arithmetic mean, or zero for an empty series.
func (s *Series) Mean() time.Duration {
	if len(s.samples) == 0 {
		return 0
	}
	return s.sum / time.Duration(len(s.samples))
}

// Max reports the largest sample (the paper's "worst-case response").
func (s *Series) Max() time.Duration { return s.max }

// Min reports the smallest sample.
func (s *Series) Min() time.Duration { return s.min }

// Sum reports the total of all samples.
func (s *Series) Sum() time.Duration { return s.sum }

// Percentile reports the p-th percentile (0 < p <= 100) using
// nearest-rank on the sorted samples. It returns zero for an empty series.
func (s *Series) Percentile(p float64) time.Duration {
	n := len(s.samples)
	if n == 0 {
		return 0
	}
	if !s.sorted {
		sort.Slice(s.samples, func(i, j int) bool { return s.samples[i] < s.samples[j] })
		s.sorted = true
	}
	if p <= 0 {
		return s.samples[0]
	}
	rank := int(math.Ceil(p / 100 * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return s.samples[rank-1]
}

// StdDev reports the population standard deviation of the samples.
func (s *Series) StdDev() time.Duration {
	n := len(s.samples)
	if n == 0 {
		return 0
	}
	mean := float64(s.Mean())
	var acc float64
	for _, d := range s.samples {
		diff := float64(d) - mean
		acc += diff * diff
	}
	return time.Duration(math.Sqrt(acc / float64(n)))
}

// String summarizes the series for human-readable reports.
func (s *Series) String() string {
	return fmt.Sprintf("n=%d mean=%v max=%v p99=%v",
		s.Count(), s.Mean().Round(time.Microsecond), s.Max().Round(time.Microsecond),
		s.Percentile(99).Round(time.Microsecond))
}

// Counter is a named monotonically increasing event count.
type Counter struct {
	n int64
}

// Inc adds one to the counter.
func (c *Counter) Inc() { c.n++ }

// Addn adds n to the counter.
func (c *Counter) Addn(n int64) { c.n += n }

// Value reports the current count.
func (c *Counter) Value() int64 { return c.n }
