package sim

import (
	"fmt"
	"time"
)

// Env is a process-oriented discrete-event simulation environment, in the
// style the paper's own database experiment uses ("the locks were implemented
// and the parallelism is real. However, the execution of a transaction is
// simulated by looping for some number of instructions and a page fault is
// simulated by a delay").
//
// Simulated processes are goroutines, but exactly one runs at a time and
// all ordering is decided by the virtual-time event queue, so runs are
// deterministic. A process advances virtual time with Proc.Sleep, contends
// for Resources (e.g. the six processors of the SGI 4D/380), and blocks on
// lock queues via Proc.Park / Env.Wake.
type Env struct {
	clock   *Clock
	events  eventHeap
	seq     int64
	parked  chan struct{} // signalled when the running proc parks or finishes
	active  int           // procs started and not yet finished
	blocked int           // procs parked with no pending wake event
}

// NewEnv returns an environment driving the given clock.
func NewEnv(clock *Clock) *Env {
	return &Env{clock: clock, parked: make(chan struct{})}
}

// Clock returns the environment's virtual clock.
func (e *Env) Clock() *Clock { return e.clock }

// Now returns the current virtual time.
func (e *Env) Now() time.Duration { return e.clock.Now() }

type event struct {
	at   time.Duration
	seq  int64
	proc *Proc  // proc to resume, or nil for a timer callback
	fn   func() // timer callback, used when proc is nil
}

// eventHeap is a typed binary min-heap of value events ordered by (at, seq).
// (at, seq) keys are unique — seq increases on every push — so heap order is
// total and runs are deterministic. A typed heap avoids the interface{}
// boxing of container/heap, which allocated one event per Push/Pop on the
// simulator's hottest loop.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(ev event) {
	*h = append(*h, ev)
	s := *h
	// Sift up.
	for i := len(s) - 1; i > 0; {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = event{} // drop the callback/proc references for the GC
	s = s[:n]
	*h = s
	// Sift down.
	for i := 0; ; {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && s.less(l, min) {
			min = l
		}
		if r < n && s.less(r, min) {
			min = r
		}
		if min == i {
			break
		}
		s[i], s[min] = s[min], s[i]
		i = min
	}
	return top
}

// eventHeapInitialCap pre-sizes the queue so steady-state simulations never
// grow it: even the six-processor database run keeps well under this many
// events in flight.
const eventHeapInitialCap = 128

func (e *Env) push(ev event) {
	if e.events == nil {
		e.events = make(eventHeap, 0, eventHeapInitialCap)
	}
	e.seq++
	ev.seq = e.seq
	e.events.push(ev)
}

// At schedules fn to run at absolute virtual time t (which must not be in
// the past). fn runs in the scheduler's goroutine and must not block.
func (e *Env) At(t time.Duration, fn func()) {
	if t < e.clock.Now() {
		panic(fmt.Sprintf("sim: event scheduled in the past (%v < %v)", t, e.clock.Now()))
	}
	e.push(event{at: t, fn: fn})
}

// After schedules fn to run d from now.
func (e *Env) After(d time.Duration, fn func()) { e.At(e.clock.Now()+d, fn) }

// Proc is a simulated process. Its methods must only be called from within
// the process's own body function.
type Proc struct {
	env    *Env
	resume chan struct{}
	name   string
}

// Name returns the name the process was started with.
func (p *Proc) Name() string { return p.name }

// Env returns the environment the process runs in.
func (p *Proc) Env() *Env { return p.env }

// Now returns the current virtual time.
func (p *Proc) Now() time.Duration { return p.env.clock.Now() }

// Go starts a new simulated process running body. The process begins at the
// current virtual time, after the caller yields to the scheduler.
func (e *Env) Go(name string, body func(p *Proc)) *Proc {
	p := &Proc{env: e, resume: make(chan struct{}), name: name}
	e.active++
	go func() {
		<-p.resume // wait for first dispatch
		body(p)
		e.active--
		e.parked <- struct{}{} // signal completion to the scheduler
	}()
	e.push(event{at: e.clock.Now(), proc: p})
	return p
}

// GoAt is like Go but the process starts at absolute virtual time t.
func (e *Env) GoAt(t time.Duration, name string, body func(p *Proc)) *Proc {
	if t < e.clock.Now() {
		panic("sim: process scheduled to start in the past")
	}
	p := &Proc{env: e, resume: make(chan struct{}), name: name}
	e.active++
	go func() {
		<-p.resume
		body(p)
		e.active--
		e.parked <- struct{}{}
	}()
	e.push(event{at: t, proc: p})
	return p
}

// park suspends the calling process until the scheduler resumes it.
func (p *Proc) park() {
	p.env.parked <- struct{}{}
	<-p.resume
}

// Sleep advances the process by d of virtual time, letting other processes
// run in the interim. Sleeping models computation or I/O latency.
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		panic("sim: negative sleep")
	}
	p.env.push(event{at: p.env.clock.Now() + d, proc: p})
	p.park()
}

// Park suspends the process indefinitely; some other process or timer must
// call Env.Wake(p) to resume it. Used to build wait queues (lock managers,
// condition variables).
func (p *Proc) Park() {
	p.env.blocked++
	p.park()
}

// Wake schedules parked process q to resume at the current virtual time.
// It must pair with a Proc.Park; waking a process that is not parked
// corrupts the simulation.
func (e *Env) Wake(q *Proc) {
	e.blocked--
	e.push(event{at: e.clock.Now(), proc: q})
}

// Run drives the simulation until no events remain. It reports the number
// of processes left permanently blocked (normally zero; nonzero indicates a
// deadlock in the simulated system, which tests assert against).
func (e *Env) Run() int { return e.RunUntil(1<<62 - 1) }

// RunUntil drives the simulation until no events remain or the next event
// is after deadline. It reports the number of processes left blocked.
func (e *Env) RunUntil(deadline time.Duration) int {
	for len(e.events) > 0 {
		if e.events[0].at > deadline {
			break
		}
		ev := e.events.pop()
		e.clock.AdvanceTo(ev.at)
		if ev.proc != nil {
			ev.proc.resume <- struct{}{}
			<-e.parked // run until it parks or finishes
		} else {
			ev.fn()
		}
	}
	return e.blocked
}

// Resource is a counted resource with FIFO queueing — for example the six
// processors of the simulated SGI 4D/380. A process holds one unit between
// Acquire and Release.
type Resource struct {
	env      *Env
	capacity int
	inUse    int
	waiters  []*Proc
	// contention statistics
	waited   Series
	acquires Counter
}

// NewResource returns a resource with the given capacity (number of units).
func NewResource(env *Env, capacity int) *Resource {
	if capacity <= 0 {
		panic("sim: resource capacity must be positive")
	}
	return &Resource{env: env, capacity: capacity}
}

// Acquire obtains one unit, blocking the process in FIFO order if all units
// are busy.
func (r *Resource) Acquire(p *Proc) {
	r.acquires.Inc()
	if r.inUse < r.capacity {
		r.inUse++
		r.waited.Add(0)
		return
	}
	start := p.Now()
	r.waiters = append(r.waiters, p)
	p.Park()
	r.waited.Add(p.Now() - start)
	// Ownership was transferred by Release before the wake, so inUse is
	// already accounted for.
}

// Release returns one unit, granting it to the oldest waiter if any.
func (r *Resource) Release() {
	if len(r.waiters) > 0 {
		w := r.waiters[0]
		r.waiters = r.waiters[1:]
		// Hand the unit directly to w: inUse stays the same.
		r.env.Wake(w)
		return
	}
	r.inUse--
	if r.inUse < 0 {
		panic("sim: resource released more than acquired")
	}
}

// InUse reports the number of units currently held.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen reports the number of processes waiting.
func (r *Resource) QueueLen() int { return len(r.waiters) }

// WaitStats reports the distribution of times processes spent queued.
func (r *Resource) WaitStats() *Series { return &r.waited }

// Use runs fn while holding one unit of the resource.
func (r *Resource) Use(p *Proc, fn func()) {
	r.Acquire(p)
	defer r.Release()
	fn()
}
