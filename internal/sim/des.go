package sim

import (
	"time"
)

// Env is a process-oriented discrete-event simulation environment, in the
// style the paper's own database experiment uses ("the locks were implemented
// and the parallelism is real. However, the execution of a transaction is
// simulated by looping for some number of instructions and a page fault is
// simulated by a delay").
//
// Simulated processes are goroutines, but within one shard exactly one runs
// at a time and all ordering is decided by the virtual-time event queue, so
// runs are deterministic. A process advances virtual time with Proc.Sleep,
// contends for Resources (e.g. the six processors of the SGI 4D/380), and
// blocks on lock queues via Proc.Park / Env.Wake.
//
// The environment runs on one of two virtual-time engines (shard.go):
//
//   - the serial engine (the default) drains a single event heap in strict
//     (at, seq) order — the golden reference every experiment output is
//     pinned against;
//   - the sharded engine partitions events across per-shard heaps, each
//     with its own local clock, advanced concurrently in conservative
//     lookahead windows with a deterministic merge barrier for cross-shard
//     messages. With a single shard its event order is identical to the
//     serial engine's, which is what keeps reproduce.golden byte-identical
//     under -timeengine sharded.
//
// The context-free Env methods (At, After, Go, Wake, ...) operate on shard
// 0, so serial-era code runs unchanged on either engine; shard-aware code
// pins work to shards through Env.Shard handles.
type Env struct {
	clock     *Clock
	shards    []*Shard
	lookahead time.Duration
	windowed  bool // sharded engine: drain in conservative lookahead windows
	windows   int64
	// active is the per-window scratch list of shards with runnable events,
	// reused so the window loop does not allocate.
	active []*Shard
}

// NewEnv returns an environment driving the given clock, on the engine the
// process selected with SetBootTimeEngine: the serial engine by default, or
// a single-shard sharded engine under "sharded" — same event order, but the
// drain runs through the windowed machinery.
func NewEnv(clock *Clock) *Env {
	if bootSharded {
		return NewShardedEnv(clock, 1, 0)
	}
	return NewSerialEnv(clock)
}

// NewSerialEnv returns an environment on the serial engine regardless of
// the boot-time engine selection.
func NewSerialEnv(clock *Clock) *Env { return newEnv(clock, 1, 0, false) }

// NewShardedEnv returns an environment on the sharded engine with the given
// shard count. lookahead is the conservative bound on cross-shard message
// latency; <= 0 selects the cost model's minimum delivery latency
// (CostModel.MinDeliveryLatency on the DECstation 5000 calibration), the
// hard lower bound any cross-manager message pays in this simulation.
// Shard 0 shares the environment's global clock; the others get fresh local
// clocks, so a sharded environment is normally built on a clock at zero.
func NewShardedEnv(clock *Clock, shards int, lookahead time.Duration) *Env {
	if shards <= 0 {
		panic("sim: sharded env needs at least one shard")
	}
	if lookahead <= 0 {
		lookahead = DECstation5000().MinDeliveryLatency()
	}
	return newEnv(clock, shards, lookahead, true)
}

func newEnv(clock *Clock, shards int, lookahead time.Duration, windowed bool) *Env {
	e := &Env{clock: clock, lookahead: lookahead, windowed: windowed}
	e.shards = make([]*Shard, shards)
	for i := range e.shards {
		c := clock
		if i > 0 {
			c = &Clock{}
		}
		e.shards[i] = &Shard{env: e, id: i, clock: c, parked: make(chan struct{})}
	}
	return e
}

// Clock returns the environment's global virtual clock (shard 0's clock).
func (e *Env) Clock() *Clock { return e.clock }

// Now returns the current virtual time of the global clock.
func (e *Env) Now() time.Duration { return e.clock.Now() }

// EngineName reports which virtual-time engine drives the environment:
// "serial" or "sharded".
func (e *Env) EngineName() string {
	if e.windowed {
		return "sharded"
	}
	return "serial"
}

// Lookahead reports the conservative cross-shard lookahead bound (zero on
// the serial engine).
func (e *Env) Lookahead() time.Duration { return e.lookahead }

// NumShards reports the number of time shards.
func (e *Env) NumShards() int { return len(e.shards) }

// Shard returns the i'th time shard.
func (e *Env) Shard(i int) *Shard { return e.shards[i] }

// EventsProcessed reports the total number of events dispatched across all
// shards. Read it after Run returns; it is not synchronized with a run in
// progress.
func (e *Env) EventsProcessed() int64 {
	var n int64
	for _, s := range e.shards {
		n += s.processed
	}
	return n
}

// Windows reports how many conservative lookahead windows the sharded
// engine has executed (zero on the serial engine).
func (e *Env) Windows() int64 { return e.windows }

type event struct {
	at   time.Duration
	seq  int64
	proc *Proc  // proc to resume, or nil for a timer callback
	fn   func() // timer callback, used when proc is nil
}

// eventHeap is a typed binary min-heap of value events ordered by (at, seq).
// (at, seq) keys are unique — seq increases on every push — so heap order is
// total and runs are deterministic. A typed heap avoids the interface{}
// boxing of container/heap, which allocated one event per Push/Pop on the
// simulator's hottest loop.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(ev event) {
	*h = append(*h, ev)
	s := *h
	// Sift up.
	for i := len(s) - 1; i > 0; {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = event{} // drop the callback/proc references for the GC
	s = s[:n]
	// Shrink the backing array when the queue drains far below its
	// high-water mark: a scheduling burst (the database run enqueues every
	// transaction up front) can grow the heap to tens of thousands of slots
	// that steady state never touches again, and every dead slot beyond
	// len is reachable capacity the GC must keep. Hysteresis — quarter
	// full, at least 4x the initial capacity, halving — bounds the copy at
	// amortized O(1) per pop and cannot oscillate against append's growth.
	if c := cap(s); c >= 4*eventHeapInitialCap && n <= c/4 {
		ns := make(eventHeap, n, c/2)
		copy(ns, s)
		s = ns
	}
	*h = s
	// Sift down.
	for i := 0; ; {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && s.less(l, min) {
			min = l
		}
		if r < n && s.less(r, min) {
			min = r
		}
		if min == i {
			break
		}
		s[i], s[min] = s[min], s[i]
		i = min
	}
	return top
}

// eventHeapInitialCap pre-sizes the queue so steady-state simulations never
// grow it: even the six-processor database run keeps well under this many
// events in flight.
const eventHeapInitialCap = 128

// At schedules fn to run at absolute virtual time t (which must not be in
// the past). fn runs in the scheduler's goroutine and must not block.
// On a sharded environment the event lands on shard 0.
func (e *Env) At(t time.Duration, fn func()) { e.shards[0].At(t, fn) }

// After schedules fn to run d from now (shard 0 on a sharded environment).
func (e *Env) After(d time.Duration, fn func()) { e.shards[0].After(d, fn) }

// Proc is a simulated process. Its methods must only be called from within
// the process's own body function.
type Proc struct {
	shard  *Shard
	resume chan struct{}
	name   string
}

// Name returns the name the process was started with.
func (p *Proc) Name() string { return p.name }

// Env returns the environment the process runs in.
func (p *Proc) Env() *Env { return p.shard.env }

// Shard returns the time shard the process runs on.
func (p *Proc) Shard() *Shard { return p.shard }

// Now returns the current virtual time of the process's shard.
func (p *Proc) Now() time.Duration { return p.shard.clock.Now() }

// Go starts a new simulated process running body on shard 0. The process
// begins at the current virtual time, after the caller yields to the
// scheduler.
func (e *Env) Go(name string, body func(p *Proc)) *Proc {
	return e.shards[0].Go(name, body)
}

// GoAt is like Go but the process starts at absolute virtual time t.
func (e *Env) GoAt(t time.Duration, name string, body func(p *Proc)) *Proc {
	return e.shards[0].GoAt(t, name, body)
}

// park suspends the calling process until the scheduler resumes it.
func (p *Proc) park() {
	p.shard.parked <- struct{}{}
	<-p.resume
}

// Sleep advances the process by d of virtual time, letting other processes
// run in the interim. Sleeping models computation or I/O latency.
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		panic("sim: negative sleep")
	}
	p.shard.push(event{at: p.shard.clock.Now() + d, proc: p})
	p.park()
}

// Park suspends the process indefinitely; some other process or timer on
// the same shard must call Env.Wake(p) to resume it. Used to build wait
// queues (lock managers, condition variables).
func (p *Proc) Park() {
	p.shard.blocked++
	p.park()
}

// Wake schedules parked process q to resume at the current virtual time of
// q's own shard. It must pair with a Proc.Park, and the waker must run on
// q's shard — cross-shard coordination goes through Shard.Send, never
// through shared park/wake queues.
func (e *Env) Wake(q *Proc) { q.shard.Wake(q) }

// Run drives the simulation until no events remain. It reports the number
// of processes left permanently blocked (normally zero; nonzero indicates a
// deadlock in the simulated system, which tests assert against).
func (e *Env) Run() int { return e.RunUntil(1<<62 - 1) }

// RunUntil drives the simulation until no events remain or the next event
// is after deadline. It reports the number of processes left blocked.
func (e *Env) RunUntil(deadline time.Duration) int {
	if e.windowed {
		return e.runWindows(deadline)
	}
	s := e.shards[0]
	s.drainSerial(deadline)
	return s.blocked
}

// Resource is a counted resource with FIFO queueing — for example the six
// processors of the simulated SGI 4D/380. A process holds one unit between
// Acquire and Release. A Resource belongs to one shard's processes; it is
// not a cross-shard synchronization primitive.
type Resource struct {
	env      *Env
	capacity int
	inUse    int
	waiters  []*Proc
	// contention statistics
	waited   Series
	acquires Counter
}

// NewResource returns a resource with the given capacity (number of units).
func NewResource(env *Env, capacity int) *Resource {
	if capacity <= 0 {
		panic("sim: resource capacity must be positive")
	}
	return &Resource{env: env, capacity: capacity}
}

// Acquire obtains one unit, blocking the process in FIFO order if all units
// are busy.
func (r *Resource) Acquire(p *Proc) {
	r.acquires.Inc()
	if r.inUse < r.capacity {
		r.inUse++
		r.waited.Add(0)
		return
	}
	start := p.Now()
	r.waiters = append(r.waiters, p)
	p.Park()
	r.waited.Add(p.Now() - start)
	// Ownership was transferred by Release before the wake, so inUse is
	// already accounted for.
}

// Release returns one unit, granting it to the oldest waiter if any.
func (r *Resource) Release() {
	if len(r.waiters) > 0 {
		w := r.waiters[0]
		r.waiters = r.waiters[1:]
		// Hand the unit directly to w: inUse stays the same.
		r.env.Wake(w)
		return
	}
	r.inUse--
	if r.inUse < 0 {
		panic("sim: resource released more than acquired")
	}
}

// InUse reports the number of units currently held.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen reports the number of processes waiting.
func (r *Resource) QueueLen() int { return len(r.waiters) }

// WaitStats reports the distribution of times processes spent queued.
func (r *Resource) WaitStats() *Series { return &r.waited }

// Use runs fn while holding one unit of the resource.
func (r *Resource) Use(p *Proc, fn func()) {
	r.Acquire(p)
	defer r.Release()
	fn()
}
