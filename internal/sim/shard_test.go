package sim

import (
	"fmt"
	"testing"
	"time"
)

// traceWorkload drives a small but varied proc mix — sleeps, a contended
// resource, park/wake pairs, timers — and records every observable step as
// "(time) name". The same workload runs on both engines; identical traces
// mean identical event order and identical clock advancement.
func traceWorkload(e *Env) []string {
	var trace []string
	note := func(now time.Duration, what string) {
		trace = append(trace, fmt.Sprintf("%v %s", now, what))
	}
	cpu := NewResource(e, 2)
	var waiter *Proc
	for i := 0; i < 4; i++ {
		i := i
		e.GoAt(time.Duration(i)*time.Microsecond, fmt.Sprintf("worker-%d", i), func(p *Proc) {
			rng := NewRNG(uint64(1992 + i))
			for step := 0; step < 20; step++ {
				cpu.Use(p, func() {
					note(p.Now(), fmt.Sprintf("%s acquired step %d", p.Name(), step))
				})
				p.Sleep(time.Duration(rng.Intn(50)) * time.Microsecond)
			}
			note(p.Now(), p.Name()+" done")
		})
	}
	e.Go("parker", func(p *Proc) {
		waiter = p
		note(p.Now(), "parker parks")
		p.Park()
		note(p.Now(), "parker woken")
	})
	e.After(300*time.Microsecond, func() {
		note(e.shards[0].Now(), "timer fires")
		e.Wake(waiter)
	})
	e.Run()
	return trace
}

// TestShardedSingleShardMatchesSerial pins the golden-parity property the
// differential reproduce test relies on: a single-shard sharded engine —
// the windowed drain — produces the exact event order and clock sequence of
// the serial engine.
func TestShardedSingleShardMatchesSerial(t *testing.T) {
	serial := traceWorkload(NewSerialEnv(&Clock{}))
	sharded := traceWorkload(NewShardedEnv(&Clock{}, 1, 0))
	if len(serial) != len(sharded) {
		t.Fatalf("trace lengths differ: serial %d, sharded %d", len(serial), len(sharded))
	}
	for i := range serial {
		if serial[i] != sharded[i] {
			t.Fatalf("traces diverge at step %d:\n  serial:  %s\n  sharded: %s", i, serial[i], sharded[i])
		}
	}
}

// TestBootTimeEngine checks the boot knob routes NewEnv and rejects junk.
func TestBootTimeEngine(t *testing.T) {
	defer func() { _ = SetBootTimeEngine("serial") }()
	if err := SetBootTimeEngine("sharded"); err != nil {
		t.Fatal(err)
	}
	if got := NewEnv(&Clock{}).EngineName(); got != "sharded" {
		t.Fatalf("engine = %q, want sharded", got)
	}
	if err := SetBootTimeEngine(""); err != nil {
		t.Fatal(err)
	}
	if got := NewEnv(&Clock{}).EngineName(); got != "serial" {
		t.Fatalf("engine = %q, want serial", got)
	}
	if err := SetBootTimeEngine("warped"); err == nil {
		t.Fatal("bogus engine name accepted")
	}
}

// shardedTrace runs a multi-shard workload with cross-shard sends and
// returns per-shard traces plus final shard clocks.
func shardedTrace(shards int, seed uint64) ([][]string, []time.Duration) {
	e := NewShardedEnv(&Clock{}, shards, 0)
	L := e.Lookahead()
	traces := make([][]string, shards)
	for i := 0; i < shards; i++ {
		i := i
		sh := e.Shard(i)
		for pid := 0; pid < 3; pid++ {
			pid := pid
			rng := NewRNG(seed + uint64(i*16+pid))
			sh.Go(fmt.Sprintf("s%d-p%d", i, pid), func(p *Proc) {
				for step := 0; step < 40; step++ {
					p.Sleep(time.Duration(1+rng.Intn(120)) * time.Microsecond)
					traces[i] = append(traces[i], fmt.Sprintf("%v %s step %d", p.Now(), p.Name(), step))
					if shards > 1 && step%8 == 3 {
						dst := e.Shard((i + 1 + rng.Intn(shards-1)) % shards)
						from, at := p.Name(), p.Now()+L+time.Duration(rng.Intn(100))*time.Microsecond
						p.Shard().Send(dst, at, func() {
							traces[dst.ID()] = append(traces[dst.ID()],
								fmt.Sprintf("%v recv from %s", dst.Now(), from))
						})
					}
				}
			})
		}
	}
	if blocked := e.Run(); blocked != 0 {
		panic(fmt.Sprintf("blocked=%d", blocked))
	}
	clocks := make([]time.Duration, shards)
	for i := range clocks {
		clocks[i] = e.Shard(i).Now()
	}
	return traces, clocks
}

// TestShardedEnvDeterminism runs the same multi-shard workload twice and
// requires bit-identical per-shard traces and final clocks: window
// boundaries and the merge barrier must be pure functions of virtual time,
// never of wall-clock goroutine interleaving.
func TestShardedEnvDeterminism(t *testing.T) {
	t1, c1 := shardedTrace(4, 7)
	t2, c2 := shardedTrace(4, 7)
	for i := range t1 {
		if c1[i] != c2[i] {
			t.Fatalf("shard %d final clock differs: %v vs %v", i, c1[i], c2[i])
		}
		if len(t1[i]) != len(t2[i]) {
			t.Fatalf("shard %d trace lengths differ: %d vs %d", i, len(t1[i]), len(t2[i]))
		}
		for j := range t1[i] {
			if t1[i][j] != t2[i][j] {
				t.Fatalf("shard %d diverges at step %d:\n  run1: %s\n  run2: %s", i, j, t1[i][j], t2[i][j])
			}
		}
	}
}

// TestCrossShardSendHorizon pins the conservative contract: a cross-shard
// send below the lookahead horizon must panic (it could otherwise be
// delivered inside the window that sent it), while a same-shard send at
// "now" is fine.
func TestCrossShardSendHorizon(t *testing.T) {
	e := NewShardedEnv(&Clock{}, 2, 40*time.Microsecond)
	s0, s1 := e.Shard(0), e.Shard(1)
	s0.Send(s0, 0, func() {}) // same-shard: no horizon
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("cross-shard send below the horizon did not panic")
			}
		}()
		s0.Send(s1, 39*time.Microsecond, func() {})
	}()
	s0.Send(s1, 40*time.Microsecond, func() {}) // exactly the horizon: allowed
	e.Run()
	if got := s1.Now(); got != 40*time.Microsecond {
		t.Fatalf("shard 1 clock = %v, want 40µs", got)
	}
}

// TestCrossShardMergeOrder checks the merge barrier's total order: arrivals
// with equal timestamps execute in (source shard, source sequence) order,
// the sharded analogue of the serial heap's seq tie-break.
func TestCrossShardMergeOrder(t *testing.T) {
	e := NewShardedEnv(&Clock{}, 3, 10*time.Microsecond)
	dst := e.Shard(0)
	var got []string
	at := 50 * time.Microsecond
	// Schedule in deliberately scrambled source order; all land at `at`.
	e.Shard(2).Send(dst, at, func() { got = append(got, "s2#1") })
	e.Shard(1).Send(dst, at, func() { got = append(got, "s1#1") })
	e.Shard(2).Send(dst, at, func() { got = append(got, "s2#2") })
	e.Shard(1).Send(dst, at, func() { got = append(got, "s1#2") })
	// The sending shards need a pending event each so the run loop opens a
	// window; an empty shard sends nothing at run time.
	e.Shard(1).At(0, func() {})
	e.Shard(2).At(0, func() {})
	e.Run()
	want := []string{"s1#1", "s1#2", "s2#1", "s2#2"}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("merge order %v, want %v", got, want)
		}
	}
}

// TestShardedBlockedProcs checks deadlock reporting sums across shards.
func TestShardedBlockedProcs(t *testing.T) {
	e := NewShardedEnv(&Clock{}, 2, 0)
	e.Shard(0).Go("stuck-0", func(p *Proc) { p.Park() })
	e.Shard(1).Go("stuck-1", func(p *Proc) { p.Park() })
	if blocked := e.Run(); blocked != 2 {
		t.Fatalf("blocked = %d, want 2", blocked)
	}
}

// TestEventHeapShrinks pins the pop-side capacity release: after a burst
// grows the heap far past the initial capacity, draining it back down must
// shrink the backing array instead of pinning the high-water mark forever.
func TestEventHeapShrinks(t *testing.T) {
	var h eventHeap
	const burst = 8 * eventHeapInitialCap
	for i := 0; i < burst; i++ {
		h.push(event{at: time.Duration(i), seq: int64(i)})
	}
	grown := cap(h)
	if grown < burst {
		t.Fatalf("cap %d after %d pushes", grown, burst)
	}
	for i := 0; i < burst-8; i++ {
		h.pop()
	}
	if cap(h) >= grown {
		t.Fatalf("heap never shrank: cap %d (high water %d, len %d)", cap(h), grown, len(h))
	}
	// Drain the rest in order to confirm shrinking preserved the heap.
	prev := time.Duration(-1)
	for len(h) > 0 {
		ev := h.pop()
		if ev.at < prev {
			t.Fatalf("heap order broken after shrink: %v after %v", ev.at, prev)
		}
		prev = ev.at
	}
}
