// Package uio implements the paper's Uniform Input/Output block interface
// over cached-file segments (§2.1): a kernel-provided, file-like block
// read/write interface. When the touched page is cached, an access is a
// single kernel operation (Table 1: 222 µs read, 203 µs write for 4 KB);
// when it is not, the access first takes the ordinary page-fault path to
// the segment's manager, which supplies the page, and then completes.
//
// The block interface does not map the file into the caller's address
// space; data is copied between the caller's buffer and the cached page.
package uio

import (
	"fmt"

	"epcm/internal/kernel"
)

// File is an open cached file: a segment plus the bookkeeping a file
// descriptor carries.
type File struct {
	k    *kernel.Kernel
	seg  *kernel.Segment
	name string
	// sizeBlocks tracks the file's logical length in blocks; writes past
	// the end extend it.
	sizeBlocks int64
	reads      int64
	writes     int64
}

// Open wraps a cached-file segment in the block interface. sizeBlocks is
// the file's current length (0 for a new file).
func Open(k *kernel.Kernel, seg *kernel.Segment, name string, sizeBlocks int64) *File {
	return &File{k: k, seg: seg, name: name, sizeBlocks: sizeBlocks}
}

// Segment returns the underlying cached-file segment.
func (f *File) Segment() *kernel.Segment { return f.seg }

// Name returns the file name.
func (f *File) Name() string { return f.name }

// SizeBlocks returns the file length in blocks.
func (f *File) SizeBlocks() int64 { return f.sizeBlocks }

// BlockSize returns the file's block size (the segment's page size).
func (f *File) BlockSize() int { return f.seg.PageSize() }

// Reads and Writes report the number of block operations performed.
func (f *File) Reads() int64  { return f.reads }
func (f *File) Writes() int64 { return f.writes }

// ResetCounters zeroes the operation counters.
func (f *File) ResetCounters() { f.reads, f.writes = 0, 0 }

// ReadBlock reads block `block` into buf (len(buf) <= block size). A read
// of a page with no frame faults to the segment manager first.
func (f *File) ReadBlock(block int64, buf []byte) error {
	if block < 0 {
		return fmt.Errorf("uio: read %q block %d: negative block", f.name, block)
	}
	if len(buf) > f.seg.PageSize() {
		return fmt.Errorf("uio: read %q block %d: buffer %d exceeds block size %d",
			f.name, block, len(buf), f.seg.PageSize())
	}
	f.reads++
	if !f.seg.HasPage(block) {
		if err := f.k.FaultIn(f.seg, block, kernel.Read); err != nil {
			return fmt.Errorf("uio: read %q block %d: %w", f.name, block, err)
		}
	}
	// Cached access: a single kernel operation (§2.1), charged as the
	// Table 1 composition.
	f.k.Clock().Advance(f.k.Cost().VppRead4K())
	if frame := f.seg.FrameAt(block); frame != nil && frame.StoresData() {
		// An untouched frame reads as zeros through pooled scratch rather
		// than forcing a permanent backing allocation.
		_ = frame.WithData(func(data []byte) error { copy(buf, data); return nil })
	}
	f.k.MarkAccessed(f.seg, block, false)
	return nil
}

// WriteBlock writes buf to block `block`. Writing a page with no frame
// faults to the segment manager (the paper's "write appending a new page to
// a segment" minimal-fault case), then completes as a cached write.
func (f *File) WriteBlock(block int64, buf []byte) error {
	if block < 0 {
		return fmt.Errorf("uio: write %q block %d: negative block", f.name, block)
	}
	if len(buf) > f.seg.PageSize() {
		return fmt.Errorf("uio: write %q block %d: buffer %d exceeds block size %d",
			f.name, block, len(buf), f.seg.PageSize())
	}
	f.writes++
	if !f.seg.HasPage(block) {
		if err := f.k.FaultIn(f.seg, block, kernel.Write); err != nil {
			return fmt.Errorf("uio: write %q block %d: %w", f.name, block, err)
		}
	}
	f.k.Clock().Advance(f.k.Cost().VppWrite4K())
	if frame := f.seg.FrameAt(block); frame != nil && frame.StoresData() {
		if len(buf) == f.seg.PageSize() {
			// Full-block write: the copy overwrites everything, so skip the
			// zeroing a fresh Data allocation would do.
			_ = frame.Fill(func(data []byte) error { copy(data, buf); return nil })
		} else {
			copy(frame.Data(), buf)
		}
	}
	f.k.MarkAccessed(f.seg, block, true)
	if block+1 > f.sizeBlocks {
		f.sizeBlocks = block + 1
	}
	return nil
}

// ReadAll reads the whole file through the block interface, returning its
// contents. Used by tests and example programs.
func (f *File) ReadAll() ([]byte, error) {
	bs := f.seg.PageSize()
	out := make([]byte, f.sizeBlocks*int64(bs))
	for b := int64(0); b < f.sizeBlocks; b++ {
		if err := f.ReadBlock(b, out[b*int64(bs):(b+1)*int64(bs)]); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// WriteAll writes data sequentially from block 0, extending the file.
func (f *File) WriteAll(data []byte) error {
	bs := f.seg.PageSize()
	for off, b := 0, int64(0); off < len(data); off, b = off+bs, b+1 {
		end := off + bs
		if end > len(data) {
			end = len(data)
		}
		if err := f.WriteBlock(b, data[off:end]); err != nil {
			return err
		}
	}
	return nil
}

// scratch returns a zeroed block-size buffer and its release func, pooled
// when the block size matches the machine frame size (the common case) and
// freshly allocated for large-page segments.
func (f *File) scratch(bs int64) ([]byte, func()) {
	m := f.k.Mem()
	if int64(m.FrameSize()) == bs {
		buf := m.GetBuffer()
		clear(buf) // reads of data-less frames must see zeros
		return buf, func() { m.PutBuffer(buf) }
	}
	return make([]byte, bs), func() {}
}

// ReadAt implements io.ReaderAt: byte-granular reads spanning blocks. Each
// touched block costs one block operation — exactly what a real program
// pays for unaligned I/O through a block interface.
func (f *File) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("uio: ReadAt %q: negative offset", f.name)
	}
	bs := int64(f.seg.PageSize())
	n := 0
	buf, release := f.scratch(bs)
	defer release()
	for n < len(p) {
		block := (off + int64(n)) / bs
		inner := (off + int64(n)) % bs
		if err := f.ReadBlock(block, buf); err != nil {
			return n, err
		}
		n += copy(p[n:], buf[inner:])
	}
	return n, nil
}

// WriteAt implements io.WriterAt. Partial-block writes read-modify-write
// the containing block, as a block device requires.
func (f *File) WriteAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("uio: WriteAt %q: negative offset", f.name)
	}
	bs := int64(f.seg.PageSize())
	n := 0
	buf, release := f.scratch(bs)
	defer release()
	for n < len(p) {
		block := (off + int64(n)) / bs
		inner := (off + int64(n)) % bs
		span := int(bs - inner)
		if span > len(p)-n {
			span = len(p) - n
		}
		if inner != 0 || span < int(bs) {
			// Read-modify-write for partial blocks.
			if err := f.ReadBlock(block, buf); err != nil {
				return n, err
			}
		}
		copy(buf[inner:], p[n:n+span])
		if err := f.WriteBlock(block, buf); err != nil {
			return n, err
		}
		n += span
	}
	return n, nil
}
