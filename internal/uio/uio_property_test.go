package uio

import (
	"bytes"
	"testing"

	"epcm/internal/sim"
)

// Property: a random interleaving of block reads and writes behaves
// exactly like an in-memory reference model — contents, file size, and
// zero-fill of never-written blocks all agree.
func TestUIOMatchesReferenceModel(t *testing.T) {
	k, _, fseg := setup(t)
	f := Open(k, fseg, "model", 0)
	ref := make(map[int64][]byte)
	var refSize int64

	rng := sim.NewRNG(123)
	buf := make([]byte, 4096)
	out := make([]byte, 4096)
	for step := 0; step < 500; step++ {
		block := int64(rng.Intn(24))
		if rng.Bool(0.5) {
			// Write a recognizable pattern.
			for i := range buf {
				buf[i] = byte(step + i)
			}
			if err := f.WriteBlock(block, buf); err != nil {
				t.Fatalf("step %d write: %v", step, err)
			}
			cp := make([]byte, 4096)
			copy(cp, buf)
			ref[block] = cp
			if block+1 > refSize {
				refSize = block + 1
			}
		} else {
			if err := f.ReadBlock(block, out); err != nil {
				t.Fatalf("step %d read: %v", step, err)
			}
			want, ok := ref[block]
			if !ok {
				want = make([]byte, 4096) // never written: zeros
			}
			if !bytes.Equal(out, want) {
				t.Fatalf("step %d: block %d contents diverge from model", step, block)
			}
		}
		if f.SizeBlocks() != refSize {
			t.Fatalf("step %d: size %d, model %d", step, f.SizeBlocks(), refSize)
		}
	}
	if err := k.CheckFrameConservation(); err != nil {
		t.Fatal(err)
	}
}

// Property: virtual time is monotone and every cached operation costs
// exactly its Table 1 value once the page is resident.
func TestUIOSteadyStateCosts(t *testing.T) {
	k, _, fseg := setup(t)
	f := Open(k, fseg, "costs", 0)
	buf := make([]byte, 4096)
	for b := int64(0); b < 8; b++ {
		if err := f.WriteBlock(b, buf); err != nil {
			t.Fatal(err)
		}
	}
	rng := sim.NewRNG(5)
	for i := 0; i < 200; i++ {
		b := int64(rng.Intn(8))
		before := k.Clock().Now()
		var want = k.Cost().VppRead4K()
		if rng.Bool(0.5) {
			if err := f.ReadBlock(b, buf); err != nil {
				t.Fatal(err)
			}
		} else {
			want = k.Cost().VppWrite4K()
			if err := f.WriteBlock(b, buf); err != nil {
				t.Fatal(err)
			}
		}
		if got := k.Clock().Now() - before; got != want {
			t.Fatalf("op %d cost %v, want %v", i, got, want)
		}
	}
}
