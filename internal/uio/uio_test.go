package uio

import (
	"bytes"
	"io"
	"testing"
	"time"

	"epcm/internal/kernel"
	"epcm/internal/phys"
	"epcm/internal/sim"
)

// fileManager backs a cached-file segment from an in-memory "server" image,
// allocating frames from a free-page segment.
type fileManager struct {
	k     *kernel.Kernel
	free  *kernel.Segment
	image map[int64][]byte // backing contents by block
}

func (m *fileManager) ManagerName() string            { return "file-manager" }
func (m *fileManager) Delivery() kernel.DeliveryMode  { return kernel.DeliverSameProcess }
func (m *fileManager) SegmentDeleted(*kernel.Segment) {}

func (m *fileManager) HandleFault(f kernel.Fault) error {
	pages := m.free.Pages()
	if len(pages) == 0 {
		return kernel.ErrPageNotPresent
	}
	src := pages[0]
	if data, ok := m.image[f.Page]; ok {
		copy(m.free.FrameAt(src).Data(), data)
	} else {
		m.free.FrameAt(src).Zero()
	}
	return m.k.MigratePages(kernel.AppCred, m.free, f.Seg, src, f.Page, 1, kernel.FlagRW, 0)
}

func setup(t testing.TB) (*kernel.Kernel, *fileManager, *kernel.Segment) {
	t.Helper()
	mem := phys.NewMemory(phys.Config{FrameSize: 4096, TotalBytes: 1 << 20, StoreData: true})
	var clock sim.Clock
	k := kernel.New(mem, &clock, sim.DECstation5000(), kernel.Config{})
	free, _ := k.CreateSegment("free", 1)
	if err := k.MigratePages(kernel.SystemCred, k.BootSegment(), free, 0, 0, 64, 0, 0); err != nil {
		t.Fatal(err)
	}
	fseg, _ := k.CreateSegment("file", 1)
	m := &fileManager{k: k, free: free, image: make(map[int64][]byte)}
	k.SetSegmentManager(fseg, m)
	return k, m, fseg
}

func TestCachedReadWriteRoundTrip(t *testing.T) {
	k, _, fseg := setup(t)
	f := Open(k, fseg, "test", 0)
	in := make([]byte, 4096)
	for i := range in {
		in[i] = byte(i * 7)
	}
	if err := f.WriteBlock(0, in); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, 4096)
	if err := f.ReadBlock(0, out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(in, out) {
		t.Fatal("round trip corrupted data")
	}
	if f.SizeBlocks() != 1 {
		t.Fatalf("size = %d", f.SizeBlocks())
	}
}

// Table 1 rows 3-4: cached block read costs 222 µs and cached write 203 µs.
func TestCachedAccessCosts(t *testing.T) {
	k, _, fseg := setup(t)
	f := Open(k, fseg, "test", 0)
	buf := make([]byte, 4096)
	if err := f.WriteBlock(0, buf); err != nil { // fault + write: not measured
		t.Fatal(err)
	}

	start := k.Clock().Now()
	if err := f.ReadBlock(0, buf); err != nil {
		t.Fatal(err)
	}
	if got := k.Clock().Now() - start; got != 222*time.Microsecond {
		t.Fatalf("cached read cost %v, want 222µs", got)
	}
	start = k.Clock().Now()
	if err := f.WriteBlock(0, buf); err != nil {
		t.Fatal(err)
	}
	if got := k.Clock().Now() - start; got != 203*time.Microsecond {
		t.Fatalf("cached write cost %v, want 203µs", got)
	}
}

// Appending a new page is the paper's minimal-fault case: the write faults,
// the manager migrates a frame, and the write completes.
func TestAppendFaultsThenWrites(t *testing.T) {
	k, _, fseg := setup(t)
	f := Open(k, fseg, "test", 0)
	buf := make([]byte, 4096)
	start := k.Clock().Now()
	if err := f.WriteBlock(0, buf); err != nil {
		t.Fatal(err)
	}
	got := k.Clock().Now() - start
	// Fault path (minus the memory-reference resume, since this is a
	// kernel-internal touch) plus the cached write.
	if got <= 203*time.Microsecond {
		t.Fatalf("append cost %v should exceed a cached write", got)
	}
	st := k.Stats()
	if st.MissingFaults != 1 {
		t.Fatalf("missing faults = %d, want 1", st.MissingFaults)
	}
}

func TestReadOfUncachedPageFetchesFromManager(t *testing.T) {
	k, m, fseg := setup(t)
	m.image[3] = bytes.Repeat([]byte{0xAB}, 4096)
	f := Open(k, fseg, "test", 4)
	out := make([]byte, 4096)
	if err := f.ReadBlock(3, out); err != nil {
		t.Fatal(err)
	}
	if out[100] != 0xAB {
		t.Fatal("manager-supplied data not visible through read")
	}
	if !fseg.HasPage(3) {
		t.Fatal("page not cached after read")
	}
	// Second read: no new fault.
	faults := k.Stats().MissingFaults
	if err := f.ReadBlock(3, out); err != nil {
		t.Fatal(err)
	}
	if k.Stats().MissingFaults != faults {
		t.Fatal("cached read faulted again")
	}
}

func TestDirtyAndReferencedFlags(t *testing.T) {
	k, _, fseg := setup(t)
	f := Open(k, fseg, "test", 0)
	buf := make([]byte, 4096)
	if err := f.WriteBlock(0, buf); err != nil {
		t.Fatal(err)
	}
	flags, ok := fseg.Flags(0)
	if !ok || !flags.Has(kernel.FlagDirty) || !flags.Has(kernel.FlagReferenced) {
		t.Fatalf("flags after write = %v", flags)
	}
	// Clear and confirm a read sets only Referenced.
	if err := k.ModifyPageFlags(kernel.AppCred, fseg, 0, 1, 0, kernel.FlagDirty|kernel.FlagReferenced); err != nil {
		t.Fatal(err)
	}
	if err := f.ReadBlock(0, buf); err != nil {
		t.Fatal(err)
	}
	flags, _ = fseg.Flags(0)
	if !flags.Has(kernel.FlagReferenced) || flags.Has(kernel.FlagDirty) {
		t.Fatalf("flags after read = %v", flags)
	}
}

func TestValidation(t *testing.T) {
	k, _, fseg := setup(t)
	f := Open(k, fseg, "test", 0)
	big := make([]byte, 8192)
	if err := f.ReadBlock(0, big); err == nil {
		t.Fatal("oversized read accepted")
	}
	if err := f.WriteBlock(-1, big[:4096]); err == nil {
		t.Fatal("negative block accepted")
	}
}

func TestWriteAllReadAll(t *testing.T) {
	k, _, fseg := setup(t)
	f := Open(k, fseg, "test", 0)
	data := make([]byte, 3*4096+100)
	for i := range data {
		data[i] = byte(i % 251)
	}
	if err := f.WriteAll(data); err != nil {
		t.Fatal(err)
	}
	if f.SizeBlocks() != 4 {
		t.Fatalf("size = %d blocks", f.SizeBlocks())
	}
	out, err := f.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out[:len(data)], data) {
		t.Fatal("WriteAll/ReadAll mismatch")
	}
	for _, b := range out[len(data):] {
		if b != 0 {
			t.Fatal("tail not zero-padded")
		}
	}
	if f.Reads() != 4 || f.Writes() != 4 {
		t.Fatalf("reads=%d writes=%d", f.Reads(), f.Writes())
	}
}

func TestReadAtWriteAtUnaligned(t *testing.T) {
	k, _, fseg := setup(t)
	f := Open(k, fseg, "unaligned", 0)
	// Write a value straddling the block 0/1 boundary.
	payload := []byte("HELLO-ACROSS-THE-BOUNDARY")
	if _, err := f.WriteAt(payload, 4090); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, len(payload))
	n, err := f.ReadAt(out, 4090)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(payload) || !bytes.Equal(out, payload) {
		t.Fatalf("round trip: %q", out)
	}
	// The partial write must not have clobbered the rest of block 0.
	head := make([]byte, 8)
	if _, err := f.ReadAt(head, 0); err != nil {
		t.Fatal(err)
	}
	for _, b := range head {
		if b != 0 {
			t.Fatal("read-modify-write corrupted untouched bytes")
		}
	}
	if f.SizeBlocks() != 2 {
		t.Fatalf("size = %d blocks", f.SizeBlocks())
	}
}

func TestReadAtWriteAtErrors(t *testing.T) {
	k, _, fseg := setup(t)
	f := Open(k, fseg, "x", 0)
	if _, err := f.ReadAt(make([]byte, 4), -1); err == nil {
		t.Fatal("negative offset read accepted")
	}
	if _, err := f.WriteAt(make([]byte, 4), -1); err == nil {
		t.Fatal("negative offset write accepted")
	}
}

// io.ReaderAt / io.WriterAt interop: stdlib helpers work on uio files.
func TestStdlibInterop(t *testing.T) {
	k, _, fseg := setup(t)
	f := Open(k, fseg, "interop", 0)
	var _ io.ReaderAt = f
	var _ io.WriterAt = f
	if _, err := f.WriteAt([]byte("section-reader"), 100); err != nil {
		t.Fatal(err)
	}
	sr := io.NewSectionReader(f, 100, 14)
	out, err := io.ReadAll(sr)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "section-reader" {
		t.Fatalf("got %q", out)
	}
}
