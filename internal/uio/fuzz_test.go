package uio

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzUIO drives byte-granular ReadAt/WriteAt scatter-gather traffic over a
// cached file and checks every read against a flat byte-slice model. The
// properties under test are the bounds arithmetic of the block-spanning
// loops: partial-block read-modify-write must not clobber neighbouring
// bytes, reads of never-written regions must see zeros, and no op may
// return a short count without an error.
//
// Offsets are capped at 16 KB (5 blocks — well inside the fixture's
// 64-frame free segment) and lengths at 512 bytes, so the fuzzer spends its
// budget on boundary alignment rather than frame exhaustion.
func FuzzUIO(f *testing.F) {
	f.Add([]byte{0, 15, 250, 30, 1, 15, 250, 30})      // write then read across block 0/1 boundary
	f.Add([]byte{0, 0, 0, 1, 1, 0, 0, 255})            // 1-byte write, long read
	f.Add([]byte("straddle\xff\x00straddle\x0f\x10p")) // unaligned soup
	f.Fuzz(func(t *testing.T, data []byte) {
		const (
			maxOff = 16 << 10
			maxLen = 512
		)
		k, _, fseg := setup(t)
		file := Open(k, fseg, "fuzz", 0)
		model := make([]byte, 0, maxOff+maxLen)
		grow := func(n int) {
			for len(model) < n {
				model = append(model, 0)
			}
		}
		for step := 0; len(data) >= 4; step++ {
			op := data[0] & 1
			off := int64(binary.BigEndian.Uint16(data[1:3])) % maxOff
			ln := int(data[3])%maxLen + 1
			data = data[4:]
			switch op {
			case 0:
				p := make([]byte, ln)
				for i := range p {
					p[i] = byte(step*31 + i)
				}
				n, err := file.WriteAt(p, off)
				if err != nil {
					t.Fatalf("WriteAt(%d bytes, off=%d): %v", ln, off, err)
				}
				if n != ln {
					t.Fatalf("WriteAt short count %d, want %d", n, ln)
				}
				grow(int(off) + ln)
				copy(model[off:], p)
			case 1:
				p := make([]byte, ln)
				n, err := file.ReadAt(p, off)
				if err != nil {
					t.Fatalf("ReadAt(%d bytes, off=%d): %v", ln, off, err)
				}
				if n != ln {
					t.Fatalf("ReadAt short count %d, want %d", n, ln)
				}
				grow(int(off) + ln) // unwritten regions read as zeros
				if !bytes.Equal(p, model[off:int(off)+ln]) {
					t.Fatalf("ReadAt(off=%d, len=%d) diverged from model", off, ln)
				}
			}
		}
		// The file can never grow beyond the capped offset range.
		bs := int64(file.BlockSize())
		if file.SizeBlocks() > (maxOff+maxLen+bs-1)/bs {
			t.Fatalf("file grew to %d blocks, beyond the capped offset range", file.SizeBlocks())
		}
	})
}
