package epcm_test

import (
	"bytes"
	"testing"
	"time"

	"epcm"
	"epcm/internal/manager"
)

// The facade must support the full quickstart flow without reaching into
// internal packages beyond constructors.
func TestFacadeQuickstartFlow(t *testing.T) {
	sys, err := epcm.Boot(epcm.Config{MemoryBytes: 8 << 20, StoreData: true})
	if err != nil {
		t.Fatal(err)
	}
	sys.Store.Preload("data", 16, func(b int64, buf []byte) { buf[0] = byte(b) })
	backing := manager.NewFileBacking(sys.Store)
	mgr, account, err := sys.NewAppManager(epcm.ManagerConfig{Name: "facade", Backing: backing}, 500)
	if err != nil {
		t.Fatal(err)
	}
	seg, err := mgr.CreateManagedSegment("data-seg")
	if err != nil {
		t.Fatal(err)
	}
	backing.BindFile(seg, "data")

	if err := sys.Kernel.Access(seg, 3, epcm.Read); err != nil {
		t.Fatal(err)
	}
	if seg.FrameAt(3).Data()[0] != 3 {
		t.Fatal("fill through facade wrong")
	}
	attrs, err := sys.Kernel.GetPageAttributes(seg, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !attrs[0].Present {
		t.Fatal("attributes missing")
	}
	if account.HeldPages() == 0 {
		t.Fatal("account holds nothing")
	}
	if err := sys.Kernel.CheckFrameConservation(); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeFlagsAndCreds(t *testing.T) {
	if epcm.FlagRW != epcm.FlagRead|epcm.FlagWrite {
		t.Fatal("flag re-exports inconsistent")
	}
	if epcm.AppCred.Privileged || !epcm.SystemCred.Privileged {
		t.Fatal("credential re-exports inconsistent")
	}
	if epcm.AnyFrame().Constrained() {
		t.Fatal("AnyFrame should be unconstrained")
	}
}

func TestFacadeDBExperiment(t *testing.T) {
	p := epcm.DefaultDBParams()
	p.Transactions = 500
	p.Warmup = 50
	r := epcm.RunDB(epcm.DBIndexInMemory, p)
	if r.Deadlocked != 0 || r.CompletedTxns != 500 {
		t.Fatalf("run broken: %+v", r)
	}
	if r.Average() <= 0 || r.Average() > 200*time.Millisecond {
		t.Fatalf("implausible average %v", r.Average())
	}
}

func TestFacadeWorkloads(t *testing.T) {
	specs := epcm.Workloads()
	if len(specs) != 3 {
		t.Fatalf("workloads = %d", len(specs))
	}
	names := map[string]bool{}
	for _, s := range specs {
		names[s.Name] = true
	}
	for _, want := range []string{"diff", "uncompress", "latex"} {
		if !names[want] {
			t.Fatalf("missing workload %q", want)
		}
	}
}

func TestFacadeMultiPool(t *testing.T) {
	sys, err := epcm.Boot(epcm.Config{MemoryBytes: 8 << 20, StoreData: true})
	if err != nil {
		t.Fatal(err)
	}
	mp := epcm.NewMultiPool(sys, "dbms")
	if _, err := mp.AddPool("relations", epcm.ManagerConfig{Source: sys.SPCM}); err != nil {
		t.Fatal(err)
	}
	pool, _ := mp.Pool("relations")
	sys.SPCM.Register(pool, "dbms.relations", 1e6)
	seg, err := mp.CreateManagedSegment("accounts", "relations")
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Kernel.Access(seg, 0, epcm.Write); err != nil {
		t.Fatal(err)
	}
	if mp.Usage()["relations"] == 0 {
		t.Fatal("pool accounting empty")
	}
}

func TestFacadeMarketPolicy(t *testing.T) {
	p := epcm.DefaultMarketPolicy()
	if p.PricePerMBSecond <= 0 || p.DefaultIncome <= 0 {
		t.Fatalf("policy defaults: %+v", p)
	}
	custom := p
	custom.FreeWhenUncontended = false
	sys, err := epcm.Boot(epcm.Config{MemoryBytes: 4 << 20, Market: &custom})
	if err != nil {
		t.Fatal(err)
	}
	if sys.SPCM.Policy().FreeWhenUncontended {
		t.Fatal("custom market policy not applied")
	}
}

// Everything a downstream user needs must be reachable through the facade
// alone: this test exercises backings, traces and the user-level apps
// using only epcm-package identifiers (plus values obtained from it).
func TestFacadeIsSelfSufficient(t *testing.T) {
	sys, err := epcm.Boot(epcm.Config{MemoryBytes: 8 << 20, StoreData: true})
	if err != nil {
		t.Fatal(err)
	}
	// Backings through the facade.
	fb := epcm.NewFileBacking(sys.Store)
	sb := epcm.NewSwapBacking(sys.Store)
	_ = epcm.NewCompressedBacking(sys.Store)
	_ = epcm.NewReplicatedBacking(fb, sb)
	_ = epcm.NewLoggingBacking(sys.Store, "journal")

	// A manager with a facade-only config.
	mgr, _, err := sys.NewAppManager(epcm.ManagerConfig{
		Name:     "facade-only",
		Backing:  sb,
		Delivery: epcm.DeliverSeparateProcess,
	}, 100)
	if err != nil {
		t.Fatal(err)
	}
	seg, err := mgr.CreateManagedSegment("data")
	if err != nil {
		t.Fatal(err)
	}

	// Record a trace, encode, decode, replay.
	rec := epcm.NewRecorder(sys)
	rec.Register(seg, "data")
	for p := int64(0); p < 4; p++ {
		if err := rec.Access(seg, p, epcm.Write); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := rec.Trace.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	tr, err := epcm.DecodeTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	sys2, err := epcm.Boot(epcm.Config{MemoryBytes: 8 << 20, StoreData: true})
	if err != nil {
		t.Fatal(err)
	}
	mgr2, _, err := sys2.NewAppManager(epcm.ManagerConfig{Name: "replayer"}, 100)
	if err != nil {
		t.Fatal(err)
	}
	res, err := epcm.ReplayTrace(sys2, tr, mgr2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Refs != 4 || res.Faults != 4 {
		t.Fatalf("replay: %+v", res)
	}

	// User-level algorithms.
	ck := epcm.NewCheckpointer(sys)
	ck.Attach(mgr, seg)
	wb := epcm.NewWriteBarrier(sys, seg)
	_ = wb
	mp3d, err := epcm.NewMP3D(sys, sb, 100)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mp3d.Step(); err != nil {
		t.Fatal(err)
	}
	q, err := epcm.NewParallelQuery(sys, sb, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	q.WorkPageTouches = 256
	q.WorkerPages = 16
	if _, err := q.Run(); err != nil {
		t.Fatal(err)
	}

	// Placement and coloring specializations.
	if _, err := epcm.NewColoring(sys, epcm.ManagerConfig{Name: "col"}, 16); err != nil {
		t.Fatal(err)
	}
	if _, err := epcm.NewPlacement(sys, epcm.ManagerConfig{Name: "pl"},
		func(f epcm.Fault) int { return 0 }); err != nil {
		t.Fatal(err)
	}
	if err := sys.Kernel.CheckFrameConservation(); err != nil {
		t.Fatal(err)
	}
}
