// Command reproduce regenerates every table of the paper's evaluation
// (Harty & Cheriton, ASPLOS 1992) and prints measured-vs-paper values.
//
// The selected tables run concurrently on the experiment harness — each
// builds its own simulator instances, so output is byte-identical at any
// parallelism level and is printed in table order regardless of which
// experiment finishes first.
//
// Usage:
//
//	reproduce                        # all tables, GOMAXPROCS-wide
//	reproduce -table 1               # just Table 1
//	reproduce -table 4 -txns 8000
//	reproduce -par 1                 # sequential
//	reproduce -json BENCH_reproduce.json
//	reproduce -sched concurrent      # concurrent fault-delivery scheduler
//	reproduce -plane                 # also run the delivery-plane scaling table
//	reproduce -plane -managers 1,2,4 # plane table over chosen manager counts
//	reproduce -batch=false           # disable batched kernel operations
//	reproduce -vector=false          # disable vectored fault delivery
//	reproduce -profile out/          # write mutex/block pprof profiles to a directory
//	reproduce -scale                 # wall-clock scale sweep -> BENCH_scale.json
//	reproduce -scalediff             # diff the last two scale sweeps and exit
//	reproduce -super                 # enable the superpage extent fast path
//	reproduce -supersweep            # superpage sweep -> BENCH_super.json
//	reproduce -superdiff             # diff the last two superpage sweeps and exit
//	reproduce -policy                # replacement-policy shootout -> BENCH_policy.json
//	reproduce -policy -policies lru,s3fifo -policyworkloads mixed
//	reproduce -policydiff            # diff the last two shootout sweeps and exit
//	reproduce -reclaim lru           # boot-default replacement policy for the tables
//	reproduce -timeengine sharded    # sharded virtual-time engine (golden stays identical)
//	reproduce -time                  # virtual-time engine scaling sweep -> BENCH_time.json
//	reproduce -time -timeshards 1,4  # sweep over chosen shard counts
//	reproduce -timediff              # diff the last two time sweeps and exit
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"epcm/internal/experiments"
	"epcm/internal/harness"
	"epcm/internal/kernel"
	"epcm/internal/manager"
	"epcm/internal/sim"
)

// trajectory is the BENCH_reproduce.json record: one wall-clock and
// measured-vs-paper snapshot per run, accumulated across the repository's
// history to track the benchmark trajectory.
type trajectory struct {
	Benchmark       string       `json:"benchmark"`
	GeneratedAt     string       `json:"generated_at"`
	GOMAXPROCS      int          `json:"gomaxprocs"`
	Parallelism     int          `json:"parallelism"`
	TotalWallMS     float64      `json:"total_wall_ms"`
	SumTableWallMS  float64      `json:"sum_table_wall_ms"`
	ParallelSpeedup float64      `json:"parallel_speedup"`
	Tables          []tableEntry `json:"tables"`
}

type tableEntry struct {
	*experiments.Report
	WallMS       float64 `json:"wall_ms"`
	EventsPerSec float64 `json:"events_per_sec"`
}

func main() {
	table := flag.Int("table", 0, "table to reproduce (1-4); 0 means all")
	txns := flag.Int("txns", 0, "override Table 4 transaction count")
	seed := flag.Uint64("seed", 0, "override Table 4 random seed")
	ablations := flag.Bool("ablations", false, "also print the design-choice ablation summary")
	par := flag.Int("par", 0, "worker-pool size; 0 means GOMAXPROCS, 1 means sequential")
	jsonPath := flag.String("json", "", "write a benchmark-trajectory record to this path")
	sched := flag.String("sched", "serial", "fault-delivery scheduler: serial (deterministic) or concurrent")
	planeTbl := flag.Bool("plane", false, "also run the delivery-plane throughput scaling table (wall-clock columns; not part of the golden output)")
	batch := flag.Bool("batch", true, "use batched kernel operations (MigratePagesBatch/ModifyPageFlagsBatch)")
	vector := flag.Bool("vector", true, "use vectored fault delivery under the concurrent scheduler (one upcall per drained fault run)")
	profileDir := flag.String("profile", "", "write mutex and block pprof profiles to this directory at exit (plateau-hunt data)")
	managersFlag := flag.String("managers", "1,4", "comma-separated manager counts for the -plane table")
	scale := flag.Bool("scale", false, "run the wall-clock scale sweep (managers x scheduler x batch) and append it to BENCH_scale.json")
	scaleManagers := flag.String("scalemanagers", "", "comma-separated manager counts for the -scale sweep (default: 1,2,4,8,16,32)")
	scaleFaults := flag.Int("scalefaults", 0, "per-manager base fault count for the -scale sweep (default 32768)")
	scaleFile := flag.String("scalefile", "BENCH_scale.json", "append-only trajectory file for the -scale sweep")
	scaleDiff := flag.Bool("scalediff", false, "print a per-cell diff of the last two sweeps in BENCH_scale.json and exit")
	super := flag.Bool("super", false, "enable the superpage extent fast path process-wide (off by default; the golden tables assume it off)")
	superSweep := flag.Bool("supersweep", false, "run the superpage sweep (managers x {base, super}) and append it to -superfile")
	superManagers := flag.String("supermanagers", "8,16", "comma-separated manager counts for the -supersweep")
	superFaults := flag.Int("superfaults", 0, "per-manager base fault count for the -supersweep (default 32768)")
	superFile := flag.String("superfile", "BENCH_super.json", "append-only trajectory file for the -supersweep")
	superDiff := flag.Bool("superdiff", false, "print a per-cell diff of the last two sweeps in the -superfile and exit")
	policyTbl := flag.Bool("policy", false, "run the replacement-policy shootout (policies x workloads x pressures) and append it to -policyout")
	policiesFlag := flag.String("policies", "", "comma-separated policy names for the -policy shootout (default: all registered)")
	policyWorkloads := flag.String("policyworkloads", "", "comma-separated workloads for the -policy shootout: zipf,scan,loop,mixed (default: all)")
	policyRefs := flag.Int("policyrefs", 0, "reference-string length per shootout cell (default 20000)")
	policyOut := flag.String("policyout", "BENCH_policy.json", "append-only trajectory file for the -policy shootout")
	policyDiff := flag.Bool("policydiff", false, "print a per-cell diff of the last two sweeps in the -policyout file and exit")
	reclaim := flag.String("reclaim", "", "boot-default replacement policy for all managers: clock, lru, lfu, s3fifo or mglru")
	timeEngine := flag.String("timeengine", "serial", "virtual-time engine: serial (golden reference) or sharded (windowed conservative)")
	timeTbl := flag.Bool("time", false, "run the virtual-time engine scaling sweep and append it to -timefile")
	timeShards := flag.String("timeshards", "1,2,4,8", "comma-separated shard counts for the -time sweep")
	timeEvents := flag.Int("timeevents", 0, "total sleep steps per -time cell (default: scaled to the widest cell)")
	timeFile := flag.String("timefile", "BENCH_time.json", "append-only trajectory file for the -time sweep")
	timeDiff := flag.Bool("timediff", false, "print a per-cell diff of the last two sweeps in the -timefile and exit")
	flag.Parse()
	if *timeDiff {
		out, err := experiments.DiffTimeSweeps(*timeFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "reproduce:", err)
			os.Exit(2)
		}
		os.Stdout.WriteString(out)
		return
	}
	if *scaleDiff {
		out, err := experiments.DiffScaleSweeps("BENCH_scale.json")
		if err != nil {
			fmt.Fprintln(os.Stderr, "reproduce:", err)
			os.Exit(2)
		}
		os.Stdout.WriteString(out)
		return
	}
	if *superDiff {
		out, err := experiments.DiffSuperSweeps(*superFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "reproduce:", err)
			os.Exit(2)
		}
		os.Stdout.WriteString(out)
		return
	}
	if *policyDiff {
		out, err := experiments.DiffPolicySweeps(*policyOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "reproduce:", err)
			os.Exit(2)
		}
		os.Stdout.WriteString(out)
		return
	}
	if *reclaim != "" {
		if err := manager.SetBootPolicy(*reclaim); err != nil {
			fmt.Fprintln(os.Stderr, "reproduce:", err)
			os.Exit(2)
		}
	}
	kernel.SetBatchOps(*batch)
	kernel.SetVectoredDelivery(*vector)
	kernel.SetSuperpages(*super)
	if err := kernel.SetBootScheduler(*sched); err != nil {
		fmt.Fprintln(os.Stderr, "reproduce:", err)
		os.Exit(2)
	}
	if err := sim.SetBootTimeEngine(*timeEngine); err != nil {
		fmt.Fprintln(os.Stderr, "reproduce:", err)
		os.Exit(2)
	}
	managers, err := parseManagers(*managersFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reproduce:", err)
		os.Exit(2)
	}
	if *profileDir != "" {
		// Contention profiling for plateau hunts: sample every mutex hold
		// and every blocking event for the whole run, and write the profiles
		// out once the selected experiments finish. The sampling itself adds
		// a little overhead, so profiled runs are for diagnosis, not for
		// recorded benchmark numbers.
		runtime.SetMutexProfileFraction(1)
		runtime.SetBlockProfileRate(1)
		defer writeProfiles(*profileDir)
	}

	var tasks []harness.Task[*experiments.Report]
	add := func(name string, run func() (*experiments.Report, error)) {
		tasks = append(tasks, harness.Task[*experiments.Report]{Name: name, Run: run})
	}
	if *table < 0 || *table > 4 {
		fmt.Fprintf(os.Stderr, "reproduce: no such table %d (want 1-4, or 0 for all)\n", *table)
		os.Exit(2)
	}
	if *table == 0 || *table == 1 {
		add("table1", experiments.Table1)
	}
	if *table == 0 || *table == 2 || *table == 3 {
		add("tables2-3", experiments.Tables23)
	}
	if *table == 0 || *table == 4 {
		add("table4", func() (*experiments.Report, error) { return experiments.Table4(*txns, *seed) })
	}
	if *ablations {
		add("ablations", experiments.Ablations)
	}
	var planeRuns []experiments.PlaneResult
	if *planeTbl {
		add("plane", func() (*experiments.Report, error) {
			rep, runs, err := experiments.PlaneTable(0, managers)
			planeRuns = runs
			return rep, err
		})
	}

	start := time.Now()
	results := harness.Run(tasks, *par)
	totalWall := time.Since(start)

	ok := true
	traj := trajectory{
		Benchmark:   "reproduce",
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Parallelism: harness.Parallelism(*par),
		TotalWallMS: float64(totalWall.Microseconds()) / 1000,
	}
	for _, r := range results {
		if r.Err != nil {
			fmt.Fprintf(os.Stderr, "reproduce: %s: %v\n", r.Name, r.Err)
			ok = false
			continue
		}
		rep := r.Value
		rep.Wall = r.Wall
		os.Stdout.Write(rep.Output)
		ok = ok && rep.OK
		entry := tableEntry{Report: rep, WallMS: float64(r.Wall.Microseconds()) / 1000}
		if secs := r.Wall.Seconds(); secs > 0 {
			entry.EventsPerSec = float64(rep.Events) / secs
		}
		traj.SumTableWallMS += entry.WallMS
		traj.Tables = append(traj.Tables, entry)
	}
	if traj.TotalWallMS > 0 {
		traj.ParallelSpeedup = traj.SumTableWallMS / traj.TotalWallMS
	}

	if len(planeRuns) > 0 {
		sweep := experiments.NewPlaneSweep(512, fmt.Sprintf("cmd/reproduce -plane, sched %s, batch %v", *sched, *batch))
		sweep.Runs = planeRuns
		if err := experiments.AppendBenchSweep("BENCH_plane.json", "delivery-plane", sweep); err != nil {
			fmt.Fprintln(os.Stderr, "reproduce: writing BENCH_plane.json:", err)
			ok = false
		}
	}
	if *scale {
		// The sweep toggles the process-global batch switch per cell, so it
		// runs by itself after the harness tasks have drained.
		mgrs, err := parseScaleManagers(*scaleManagers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "reproduce:", err)
			os.Exit(2)
		}
		rep, sweep, err := experiments.ScaleSweep(*scaleFaults, mgrs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "reproduce: scale sweep:", err)
			ok = false
		} else {
			os.Stdout.Write(rep.Output)
			ok = ok && rep.OK
			// Compare against the previous recorded sweep before appending
			// this one: the verdict names the worst-moving cell.
			fmt.Println(experiments.ScaleRegressionVerdict(*scaleFile, sweep))
			if err := experiments.AppendBenchSweep(*scaleFile, "scale-sweep", sweep); err != nil {
				fmt.Fprintln(os.Stderr, "reproduce: writing", *scaleFile+":", err)
				ok = false
			}
		}
	}
	if *superSweep {
		// Each cell toggles the process-global superpage and batch
		// switches, so the sweep runs by itself after the harness tasks
		// have drained.
		mgrs, err := parseManagers(*superManagers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "reproduce:", err)
			os.Exit(2)
		}
		rep, sweep, err := experiments.SuperpageSweep(*superFaults, mgrs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "reproduce: superpage sweep:", err)
			ok = false
		} else {
			os.Stdout.Write(rep.Output)
			ok = ok && rep.OK
			if err := experiments.AppendBenchSweep(*superFile, "superpage-sweep", sweep); err != nil {
				fmt.Fprintln(os.Stderr, "reproduce: writing", *superFile+":", err)
				ok = false
			}
		}
	}

	if *timeTbl {
		// The sweep raises GOMAXPROCS for its widest cell and measures wall
		// time, so run after the harness tasks have drained.
		shards, err := parseManagers(*timeShards)
		if err != nil {
			fmt.Fprintln(os.Stderr, "reproduce:", err)
			os.Exit(2)
		}
		rep, sweep, err := experiments.TimeSweep(*timeEvents, shards)
		if err != nil {
			fmt.Fprintln(os.Stderr, "reproduce: time sweep:", err)
			ok = false
		} else {
			os.Stdout.Write(rep.Output)
			ok = ok && rep.OK
			if err := experiments.AppendTimeSweep(*timeFile, sweep); err != nil {
				fmt.Fprintln(os.Stderr, "reproduce: writing", *timeFile+":", err)
				ok = false
			}
		}
	}

	if *policyTbl {
		// Each cell boots its own kernel and toggles no process globals, but
		// the allocs/fault column wants a quiet heap, so run after the
		// harness tasks have drained.
		rep, sweep, err := experiments.PolicyShootout(experiments.ShootoutOptions{
			Policies:  splitCSV(*policiesFlag),
			Workloads: splitCSV(*policyWorkloads),
			Refs:      *policyRefs,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "reproduce: policy shootout:", err)
			ok = false
		} else {
			os.Stdout.Write(rep.Output)
			ok = ok && rep.OK
			if err := experiments.AppendPolicySweep(*policyOut, sweep); err != nil {
				fmt.Fprintln(os.Stderr, "reproduce: writing", *policyOut+":", err)
				ok = false
			}
		}
	}

	if *jsonPath != "" {
		blob, err := json.MarshalIndent(traj, "", "  ")
		if err == nil {
			err = os.WriteFile(*jsonPath, append(blob, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "reproduce: writing trajectory:", err)
			ok = false
		}
	}
	if !ok {
		if *profileDir != "" {
			writeProfiles(*profileDir)
		}
		os.Exit(1)
	}
}

// writeProfiles dumps the mutex and block profiles collected during the
// run (enabled by -profile) into dir, creating it if needed. Errors are
// reported but never change the exit status: profiles are diagnostic
// artifacts, not results.
func writeProfiles(dir string) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "reproduce: -profile:", err)
		return
	}
	for _, name := range []string{"mutex", "block"} {
		prof := pprof.Lookup(name)
		if prof == nil {
			continue
		}
		path := filepath.Join(dir, name+".pprof")
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "reproduce: -profile:", err)
			continue
		}
		if err := prof.WriteTo(f, 0); err != nil {
			fmt.Fprintln(os.Stderr, "reproduce: -profile:", err)
		}
		f.Close()
		fmt.Fprintf(os.Stderr, "reproduce: wrote %s\n", path)
	}
}

// splitCSV splits a comma list, dropping empty entries; nil when empty.
func splitCSV(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// parseManagers parses the -managers comma list.
// parseScaleManagers is parseManagers with an empty string meaning "use
// the sweep's default ladder" (ScaleSweep fills in 1..32 for a nil list).
func parseScaleManagers(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	return parseManagers(s)
}

func parseManagers(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad -managers entry %q (want positive integers, comma-separated)", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-managers list is empty")
	}
	return out, nil
}
