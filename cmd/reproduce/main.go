// Command reproduce regenerates every table of the paper's evaluation
// (Harty & Cheriton, ASPLOS 1992) and prints measured-vs-paper values.
//
// Usage:
//
//	reproduce              # all tables
//	reproduce -table 1     # just Table 1
//	reproduce -table 4 -txns 8000
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"epcm/internal/db"
	"epcm/internal/kernel"
	"epcm/internal/manager"
	"epcm/internal/phys"
	"epcm/internal/sim"
	"epcm/internal/spcm"
	"epcm/internal/storage"
	"epcm/internal/uio"
	"epcm/internal/ultrix"
	"epcm/internal/workload"
)

func main() {
	table := flag.Int("table", 0, "table to reproduce (1-4); 0 means all")
	txns := flag.Int("txns", 0, "override Table 4 transaction count")
	seed := flag.Uint64("seed", 0, "override Table 4 random seed")
	ablations := flag.Bool("ablations", false, "also print the design-choice ablation summary")
	flag.Parse()

	ok := true
	if *table == 0 || *table == 1 {
		ok = table1() && ok
	}
	if *table == 0 || *table == 2 || *table == 3 {
		ok = tables2and3() && ok
	}
	if *table == 0 || *table == 4 {
		ok = table4(*txns, *seed) && ok
	}
	if *ablations {
		ablationSummary()
	}
	if !ok {
		os.Exit(1)
	}
}

// ablationSummary prints quick versions of the design-choice ablations
// (the full versions are the go test -bench=Ablation benchmarks).
func ablationSummary() {
	header("Ablations (design choices)")
	cost := sim.DECstation5000()
	fmt.Printf("%-34s %s\n", "fault delivery", fmt.Sprintf("same-process %v, separate-manager %v",
		cost.VppMinimalFaultSameProcess(), cost.VppMinimalFaultSeparateManager()))
	fmt.Printf("%-34s %s\n", "zero-fill on allocation",
		fmt.Sprintf("Ultrix %v with, %v without; V++ needs none",
			cost.UltrixMinimalFault(), cost.UltrixMinimalFault()-cost.ZeroPage))
	fmt.Printf("%-34s %s\n", "user-level fault handler",
		fmt.Sprintf("Ultrix signal+mprotect %v vs V++ full fault %v",
			cost.UltrixUserFaultHandler(), cost.VppMinimalFaultSameProcess()))

	// Replacement policy: cyclic scan, clock vs MRU.
	clockFaults, mruFaults := replacementAblation()
	fmt.Printf("%-34s clock %d faults, app MRU policy %d faults\n", "replacement selection (cyclic scan)", clockFaults, mruFaults)
	fmt.Println("\n(run `go test -bench=Ablation` for the full ablation suite)")
}

func replacementAblation() (clockFaults, mruFaults int64) {
	run := func(policy func([]manager.Victim) int) int64 {
		mem := phys.NewMemory(phys.Config{FrameSize: 4096, TotalBytes: 1 << 20, StoreData: false})
		var clock sim.Clock
		k := kernel.New(mem, &clock, sim.DECstation5000(), kernel.Config{})
		store := storage.NewStore(&clock, storage.LocalDisk(), 4096)
		pool, err := manager.NewFixedPool(k, 64, 0)
		check(err)
		g, err := manager.NewGeneric(k, manager.Config{
			Name: "scan", Source: pool, Backing: manager.NewSwapBacking(store), SelectVictim: policy,
		})
		check(err)
		seg, err := g.CreateManagedSegment("data")
		check(err)
		for pass := 0; pass < 4; pass++ {
			for p := int64(0); p < 128; p++ {
				check(k.Access(seg, p, kernel.Read))
			}
		}
		return g.Stats().Faults
	}
	return run(nil), run(manager.MRUVictim)
}

func header(s string) {
	fmt.Printf("\n%s\n", s)
	for range s {
		fmt.Print("=")
	}
	fmt.Println()
}

// table1 measures the system primitives through the real code paths.
func table1() bool {
	header("Table 1: System Primitive Times (microseconds)")

	vppFault := measureVppFault(kernel.DeliverSameProcess)
	vppMgr := measureVppFault(kernel.DeliverSeparateProcess)
	vppRead, vppWrite := measureVppIO()
	ultFault, ultRead, ultWrite, ultUser := measureUltrix()

	fmt.Printf("%-38s %10s %10s %10s\n", "Measurement", "V++", "Ultrix", "Paper")
	rows := []struct {
		name        string
		vpp, ultrix time.Duration
		paper       string
	}{
		{"Faulting Process Minimal Fault", vppFault, ultFault, "107 / 175"},
		{"Default Segment Manager Minimal Fault", vppMgr, ultFault, "379 / 175"},
		{"Read 4KB", vppRead, ultRead, "222 / 211"},
		{"Write 4KB", vppWrite, ultWrite, "203 / 311"},
		{"User-level fault handler (Ultrix)", 0, ultUser, "- / 152"},
	}
	for _, r := range rows {
		fmt.Printf("%-38s %10d %10d %10s\n", r.name,
			r.vpp.Microseconds(), r.ultrix.Microseconds(), r.paper)
	}
	return vppFault == 107*time.Microsecond && vppMgr == 379*time.Microsecond &&
		vppRead == 222*time.Microsecond && vppWrite == 203*time.Microsecond &&
		ultFault == 175*time.Microsecond && ultUser == 152*time.Microsecond
}

func measureVppFault(d kernel.DeliveryMode) time.Duration {
	mem := phys.NewMemory(phys.Config{FrameSize: 4096, TotalBytes: 8 << 20, StoreData: true})
	var clock sim.Clock
	k := kernel.New(mem, &clock, sim.DECstation5000(), kernel.Config{})
	s := spcm.New(k, spcm.DefaultPolicy())
	g, err := manager.NewGeneric(k, manager.Config{Name: "m", Delivery: d, Source: s})
	check(err)
	s.Register(g, "m", 1e9)
	seg, err := g.CreateManagedSegment("seg")
	check(err)
	check(g.EnsureFree(16))
	start := clock.Now()
	check(k.Access(seg, 0, kernel.Write))
	return clock.Now() - start
}

func measureVppIO() (read, write time.Duration) {
	mem := phys.NewMemory(phys.Config{FrameSize: 4096, TotalBytes: 8 << 20, StoreData: true})
	var clock sim.Clock
	k := kernel.New(mem, &clock, sim.DECstation5000(), kernel.Config{})
	store := storage.NewStore(&clock, storage.NetworkServer(), 4096)
	s := spcm.New(k, spcm.DefaultPolicy())
	fb := manager.NewFileBacking(store)
	g, err := manager.NewGeneric(k, manager.Config{Name: "m", Source: s, Backing: fb})
	check(err)
	s.Register(g, "m", 1e9)
	seg, err := g.CreateManagedSegment("file")
	check(err)
	fb.BindFile(seg, "file")
	// Warm one page.
	check(k.Access(seg, 0, kernel.Write))

	f := uio.Open(k, seg, "file", 1)
	buf := make([]byte, 4096)
	start := clock.Now()
	check(f.ReadBlock(0, buf))
	read = clock.Now() - start
	start = clock.Now()
	check(f.WriteBlock(0, buf))
	write = clock.Now() - start
	return read, write
}

func measureUltrix() (fault, read, write, user time.Duration) {
	var clock sim.Clock
	store := storage.NewStore(&clock, storage.LocalDisk(), 4096)
	store.Preload("f", 2, nil)
	s := ultrix.New(&clock, sim.DECstation5000(), store, 4096)
	region := s.NewRegion("heap")
	fault = s.MinimalFault(region, 0)

	f := s.OpenFile("f")
	f.Read4K(0)
	start := clock.Now()
	f.Read4K(0)
	read = clock.Now() - start
	f.Write4K(0)
	start = clock.Now()
	f.Write4K(0)
	write = clock.Now() - start

	region.Touch(5, true)
	region.Mprotect(5, true)
	start = clock.Now()
	region.Touch(5, false)
	user = clock.Now() - start
	return
}

func tables2and3() bool {
	header("Table 2: Application Elapsed Time (seconds) / Table 3: VM System Activity")
	fmt.Printf("%-11s | %8s %8s %8s %8s | %6s %6s %7s %7s %9s %9s\n",
		"Program", "V++", "paper", "Ultrix", "paper", "Calls", "paper", "Migrate", "paper", "Ovhd(ms)", "paper")
	ok := true
	for _, spec := range workload.All() {
		cal, err := workload.Calibrated(spec)
		check(err)
		vr, err := workload.NewVppRunner(0)
		check(err)
		ve, vc, err := workload.Run(vr, cal)
		check(err)
		ur := workload.NewUltrixRunner(0)
		ue, _, err := workload.Run(ur, cal)
		check(err)
		overhead := time.Duration(vc.ManagerCalls) * 204 * time.Microsecond
		fmt.Printf("%-11s | %8.2f %8.2f %8.2f %8.2f | %6d %6d %7d %7d %9.0f %9d\n",
			spec.Name, ve.Seconds(), spec.PaperVppElapsed.Seconds(),
			ue.Seconds(), spec.UltrixElapsed.Seconds(),
			vc.ManagerCalls, spec.PaperCalls, vc.MigrateCalls, spec.PaperMigrates,
			float64(overhead.Milliseconds()), spec.PaperOverhead.Milliseconds())
		if diffPct(vc.MigrateCalls, spec.PaperMigrates) > 3 {
			ok = false
		}
	}
	fmt.Println("\n(The Ultrix column is calibrated to the paper by construction;")
	fmt.Println(" the V++ column and all Table 3 activity counts are emergent.)")
	return ok
}

func diffPct(got, want int64) int64 {
	d := got - want
	if d < 0 {
		d = -d
	}
	if want == 0 {
		return 0
	}
	return d * 100 / want
}

func table4(txns int, seed uint64) bool {
	header("Table 4: Effect of Memory Usage on Transaction Response (ms)")
	p := db.DefaultParams()
	if txns > 0 {
		p.Transactions = txns
	}
	if seed != 0 {
		p.Seed = seed
	}
	paper := db.PaperTable4()
	fmt.Printf("%-22s %10s %10s %12s %12s %8s %8s\n",
		"Configuration", "Average", "paper", "Worst-case", "paper", "p95", "p99")
	ok := true
	for _, r := range db.RunAll(p) {
		want := paper[r.Config]
		fmt.Printf("%-22s %10d %10d %12d %12d %8d %8d\n", r.Config,
			r.Average().Milliseconds(), want[0].Milliseconds(),
			r.Worst().Milliseconds(), want[1].Milliseconds(),
			r.Responses.Percentile(95).Milliseconds(),
			r.Responses.Percentile(99).Milliseconds())
		if r.Deadlocked != 0 {
			fmt.Printf("  !! %d processes deadlocked\n", r.Deadlocked)
			ok = false
		}
	}
	fmt.Printf("\n(%d transactions, %d processors, %.0f tps, %.0f%% joins, seed %d)\n",
		p.Transactions, p.Processors, p.ArrivalTPS, p.JoinFraction*100, p.Seed)
	return ok
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "reproduce:", err)
		os.Exit(1)
	}
}
