// Command vmmtrace runs one of the §3.2 application workloads on a chosen
// system (V++ with the default segment manager, or the Ultrix baseline) and
// prints the virtual-memory activity it generated — faults, manager calls,
// MigratePages invocations, I/O system calls, zero fills — plus the elapsed
// virtual time.
//
// Usage:
//
//	vmmtrace -workload diff -system vpp
//	vmmtrace -workload uncompress -system ultrix
//	vmmtrace -workload latex -system both
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"epcm/internal/kernel"
	"epcm/internal/manager"
	"epcm/internal/phys"
	"epcm/internal/sim"
	"epcm/internal/storage"
	"epcm/internal/trace"
	"epcm/internal/workload"
)

func main() {
	wl := flag.String("workload", "diff", "workload: diff, uncompress, latex, scan, random")
	system := flag.String("system", "both", "system: vpp, ultrix, both")
	memMB := flag.Int("mem", 128, "physical memory in MB")
	replay := flag.String("replay", "", "replay a recorded reference trace file instead of a workload")
	mru := flag.Bool("mru", false, "with -replay: use the MRU replacement policy instead of the clock")
	flag.Parse()

	if *replay != "" {
		replayTrace(*replay, *memMB, *mru)
		return
	}

	var spec workload.Spec
	calibrate := true
	switch *wl {
	case "diff":
		spec = workload.Diff()
	case "uncompress":
		spec = workload.Uncompress()
	case "latex":
		spec = workload.Latex()
	case "scan":
		spec = workload.Synthetic()[0]
		calibrate = false
	case "random":
		spec = workload.Synthetic()[1]
		calibrate = false
	default:
		fmt.Fprintf(os.Stderr, "vmmtrace: unknown workload %q\n", *wl)
		os.Exit(2)
	}
	cal := spec
	if calibrate {
		var err error
		cal, err = workload.Calibrated(spec)
		if err != nil {
			fatal(err)
		}
	}
	memPages := *memMB * 256

	if *system == "vpp" || *system == "both" {
		r, err := workload.NewVppRunner(memPages)
		if err != nil {
			fatal(err)
		}
		elapsed, c, err := workload.Run(r, cal)
		if err != nil {
			fatal(err)
		}
		report("V++", spec.Name, elapsed, c)
	}
	if *system == "ultrix" || *system == "both" {
		r := workload.NewUltrixRunner(memPages)
		elapsed, c, err := workload.Run(r, cal)
		if err != nil {
			fatal(err)
		}
		report("Ultrix", spec.Name, elapsed, c)
	}
}

func report(system, name string, elapsed time.Duration, c workload.Counters) {
	fmt.Printf("%s running %s:\n", system, name)
	fmt.Printf("  elapsed (virtual)     %v\n", elapsed.Round(time.Millisecond))
	fmt.Printf("  page faults           %d\n", c.Faults)
	if c.ManagerCalls > 0 {
		fmt.Printf("  manager calls          %d\n", c.ManagerCalls)
		fmt.Printf("  MigratePages calls     %d\n", c.MigrateCalls)
	}
	fmt.Printf("  read calls             %d\n", c.ReadCalls)
	fmt.Printf("  write calls            %d\n", c.WriteCalls)
	if c.ZeroFills > 0 {
		fmt.Printf("  security zero fills    %d\n", c.ZeroFills)
	}
	fmt.Println()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vmmtrace:", err)
	os.Exit(1)
}

// replayTrace replays a reference trace file against a fresh V++ machine.
func replayTrace(path string, memMB int, mru bool) {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	tr, err := trace.Decode(f)
	if err != nil {
		fatal(err)
	}
	mem := phys.NewMemory(phys.Config{FrameSize: 4096, TotalBytes: int64(memMB) << 20, StoreData: false})
	var clock sim.Clock
	k := kernel.New(mem, &clock, sim.DECstation5000(), kernel.Config{})
	store := storage.NewStore(&clock, storage.LocalDisk(), 4096)
	pool, err := manager.NewFixedPool(k, int64(memMB)*256-64, 16)
	if err != nil {
		fatal(err)
	}
	cfg := manager.Config{Name: "replay", Source: pool, Backing: manager.NewSwapBacking(store)}
	if mru {
		cfg.SelectVictim = manager.MRUVictim
	}
	g, err := manager.NewGeneric(k, cfg)
	if err != nil {
		fatal(err)
	}
	res, err := trace.Replay(k, tr, g.CreateManagedSegment)
	if err != nil {
		fatal(err)
	}
	policy := "clock"
	if mru {
		policy = "mru"
	}
	fmt.Printf("replayed %d references over %d segments (policy %s, %d MB):\n",
		res.Refs, len(tr.Segments()), policy, memMB)
	fmt.Printf("  faults   %d\n", res.Faults)
	fmt.Printf("  reclaims %d\n", g.Stats().Reclaims)
	fmt.Printf("  disk ops %d\n", store.Reads()+store.Writes())
	fmt.Printf("  elapsed  %v (virtual)\n", clock.Now().Round(time.Millisecond))
}
