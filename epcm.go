// Package epcm is a Go reproduction of "Application-Controlled Physical
// Memory using External Page-Cache Management" (Kieran Harty and David R.
// Cheriton, ASPLOS 1992): the V++ kernel's virtual memory system, in which
// the kernel exports a page-frame cache that process-level segment managers
// — including application-specific ones — manage themselves.
//
// Because Go programs cannot control physical page frames (the runtime owns
// memory), the machine is simulated: a deterministic physical memory, MMU
// and cost model calibrated to the paper's DECstation 5000/200
// measurements. Everything above that line is implemented for real: the
// kernel's segments, bound regions and copy-on-write; the MigratePages /
// ModifyPageFlags / GetPageAttributes / SetSegmentManager operations; the
// generic and default segment managers; the System Page Cache Manager with
// its dram memory market; and the ULTRIX 4.1 baseline the paper compares
// against.
//
// Quick start:
//
//	sys, err := epcm.Boot(epcm.Config{MemoryBytes: 32 << 20, StoreData: true})
//	mgr, _, err := sys.NewAppManager(epcm.ManagerConfig{Name: "mine"}, 1000)
//	seg, err := mgr.CreateManagedSegment("data")
//	err = sys.Kernel.Access(seg, 0, epcm.Write) // faults to *your* manager
//
// See examples/ for complete programs and bench_test.go for the harnesses
// that regenerate every table of the paper's evaluation.
package epcm

import (
	"io"

	"epcm/internal/apps"
	"epcm/internal/core"
	"epcm/internal/db"
	"epcm/internal/faultinject"
	"epcm/internal/kernel"
	"epcm/internal/manager"
	"epcm/internal/phys"
	"epcm/internal/spcm"
	"epcm/internal/storage"
	"epcm/internal/trace"
	"epcm/internal/workload"
)

// System is a booted V++ machine: kernel, SPCM, default segment manager and
// file server over a simulated physical memory and virtual clock.
type System = core.System

// Config describes the machine and policies to boot.
type Config = core.Config

// Boot builds and starts a system.
func Boot(cfg Config) (*System, error) { return core.Boot(cfg) }

// Segment is a kernel segment: a variable-size range of pages backed by
// page frames, the unit managers operate on.
type Segment = kernel.Segment

// Fault is a page-fault event delivered to a segment manager.
type Fault = kernel.Fault

// PageFlags are per-page state and protection flags.
type PageFlags = kernel.PageFlags

// Page flag and access-type constants re-exported from the kernel.
const (
	FlagRead        = kernel.FlagRead
	FlagWrite       = kernel.FlagWrite
	FlagRW          = kernel.FlagRW
	FlagDirty       = kernel.FlagDirty
	FlagReferenced  = kernel.FlagReferenced
	FlagPinned      = kernel.FlagPinned
	FlagDiscardable = kernel.FlagDiscardable

	Read  = kernel.Read
	Write = kernel.Write
)

// Manager is the segment-manager interface a custom manager implements (or
// derives from Generic).
type Manager = kernel.Manager

// Cred is a credential for kernel operations; AppCred is the ordinary
// unprivileged credential, SystemCred the SPCM's privileged one.
type Cred = kernel.Cred

// Credentials re-exported from the kernel.
var (
	AppCred    = kernel.AppCred
	SystemCred = kernel.SystemCred
)

// PageRange is one contiguous run of pages in a batched kernel operation
// (MigratePagesBatch / ModifyPageFlagsBatch).
type PageRange = kernel.PageRange

// Batched-operation helpers re-exported from the kernel: CoalesceRanges
// groups parallel source/destination page lists into the fewest ranges;
// SetBatchOps/BatchOps toggle the batched fast paths (the ablation arm of
// the scale sweep).
var (
	CoalesceRanges = kernel.CoalesceRanges
	SetBatchOps    = kernel.SetBatchOps
	BatchOps       = kernel.BatchOps
)

// Superpage-plane helpers re-exported from the kernel. SetSuperpages is the
// process-wide half of the extent gate (Config.Superpages flips it at boot);
// the per-manager half is ManagerConfig.ExtentOrder. Both must be set for
// any extent to be promoted, so the default configuration never changes the
// golden reproduction output.
var (
	SetSuperpages     = kernel.SetSuperpages
	SuperpagesEnabled = kernel.SuperpagesEnabled
)

// Generic is the specializable generic segment manager of the paper's §2.2.
type Generic = manager.Generic

// ManagerConfig specializes a Generic manager (fill routine, replacement,
// allocation constraints, delivery mode).
type ManagerConfig = manager.Config

// Backing supplies and persists page data for managed segments.
type Backing = manager.Backing

// Victim is one eviction candidate offered to a specialized replacement
// policy (ManagerConfig.SelectVictim); MRUVictim is the classic DBMS scan
// policy.
type Victim = manager.Victim

// MRUVictim evicts the most recently used (highest-numbered) page.
func MRUVictim(cands []Victim) int { return manager.MRUVictim(cands) }

// --- Replacement policies -----------------------------------------------

// Policy is a pluggable replacement policy: victim selection plus
// insert/touch/remove bookkeeping hooks, driven by the manager through a
// PolicyHost. Registered implementations: "clock" (the §2.2 default),
// "lru", "lfu", "s3fifo" and "mglru". Set ManagerConfig.Policy for one
// manager, Config.ReclaimPolicy for a whole system, or SetSegmentPolicy
// for one segment.
type Policy = manager.Policy

// PolicyHost is the manager-side interface a Policy samples and evicts
// through.
type PolicyHost = manager.PolicyHost

// PageID names one page of one segment in policy bookkeeping.
type PageID = manager.PageID

// Policy registry re-exports: NewPolicy constructs a registered policy by
// name, PolicyNames lists them, RegisterPolicy adds a custom one, and
// SetBootPolicy/BootPolicy select the process-wide default for managers
// that do not choose explicitly.
var (
	NewPolicy      = manager.NewPolicy
	PolicyNames    = manager.PolicyNames
	RegisterPolicy = manager.RegisterPolicy
	SetBootPolicy  = manager.SetBootPolicy
	BootPolicy     = manager.BootPolicy
)

// SetSegmentPolicy binds a replacement policy instance to one managed
// segment (nil restores the manager's default policy). Per-segment
// policies let one manager run, say, MGLRU over its heap and plain FIFO
// over a log segment.
func SetSegmentPolicy(mgr *Generic, seg *Segment, p Policy) {
	mgr.SetSegmentPolicy(seg, p)
}

// FrameRange constrains which physical frames may serve an allocation
// (physical placement control and page coloring).
type FrameRange = phys.Range

// AnyFrame is the unconstrained FrameRange.
func AnyFrame() FrameRange { return phys.AnyFrame() }

// MarketPolicy is the SPCM's dram memory-market policy.
type MarketPolicy = spcm.Policy

// Account is one client of the memory market.
type Account = spcm.Account

// DefaultMarketPolicy returns the standard market parameters.
func DefaultMarketPolicy() MarketPolicy { return spcm.DefaultPolicy() }

// DBParams parametrizes the §3.3 database transaction-processing
// experiment; DBConfig selects one of Table 4's four configurations.
type (
	DBParams = db.Params
	DBConfig = db.MemoryConfig
	DBResult = db.Result
)

// Table 4 configurations.
const (
	DBNoIndex           = db.NoIndex
	DBIndexInMemory     = db.IndexInMemory
	DBIndexWithPaging   = db.IndexWithPaging
	DBIndexRegeneration = db.IndexRegeneration
)

// DefaultDBParams returns the paper's §3.3 setup (6 processors, 40 tps,
// 95 % DebitCredit / 5 % joins).
func DefaultDBParams() DBParams { return db.DefaultParams() }

// RunDB runs one database configuration to completion.
func RunDB(cfg DBConfig, p DBParams) *DBResult { return db.New(cfg, p).Run() }

// RunDBAll runs all four Table 4 configurations.
func RunDBAll(p DBParams) []*DBResult { return db.RunAll(p) }

// WorkloadSpec is a §3.2 application model (diff, uncompress, latex).
type WorkloadSpec = workload.Spec

// Workloads returns the three Table 2/3 application models.
func Workloads() []WorkloadSpec { return workload.All() }

// MultiPool is the DBMS-style manager with per-data-type free-page
// segments and scratch stealing (§2.2).
type MultiPool = manager.MultiPool

// NewMultiPool creates a multi-pool manager on a booted system.
func NewMultiPool(sys *System, name string) *MultiPool {
	return manager.NewMultiPool(sys.Kernel, name)
}

// Checkpointer and WriteBarrier are the Appel-Li style user-level
// algorithms of §3.1: concurrent checkpointing and a concurrent-GC write
// barrier, built on protection faults to the application's manager.
type (
	Checkpointer = apps.Checkpointer
	WriteBarrier = apps.WriteBarrier
)

// MP3D is the §1 memory-adaptive particle simulation.
type MP3D = apps.MP3D

// Advanced backings (§2.1's "replicated writeback, page compression and
// logging" schemes), all ordinary Backing implementations requiring no
// kernel support.
type (
	CompressedBacking = manager.CompressedBacking
	ReplicatedBacking = manager.ReplicatedBacking
	LoggingBacking    = manager.LoggingBacking
)

// --- Fault injection ---------------------------------------------------

// FaultPlan is a seeded, deterministic fault-injection schedule. Set
// Config.FaultPlan to arm it at boot; the same seed over the same workload
// reproduces the same injections, byte for byte. System.Chaos exposes the
// armed plane's summary and event log.
type FaultPlan = faultinject.Plan

// ChaosPlane is the armed fault plane (System.Chaos).
type ChaosPlane = faultinject.Plane

// ChaosSummary reports what a plane injected.
type ChaosSummary = faultinject.Summary

// Typed errors for fault-injection and recovery paths, matchable with
// errors.Is through manager retry wrapping.
var (
	// ErrInjected marks an injected storage failure.
	ErrInjected = storage.ErrInjected
	// ErrTransient marks a retryable storage failure.
	ErrTransient = storage.ErrTransient
	// ErrTornWrite marks a store failure that persisted a partial block.
	ErrTornWrite = storage.ErrTornWrite
	// ErrManagerCrashed reports a segment manager death; the kernel revokes
	// the manager and its segments fall back to the default manager.
	ErrManagerCrashed = kernel.ErrManagerCrashed
	// ErrRetriesExhausted reports a transient storage error that outlived
	// the manager's retry budget.
	ErrRetriesExhausted = manager.ErrRetriesExhausted
)

// FailingStore wraps a BlockStore with deterministic failure injection
// (fail-after-N, fail-once, torn writes, transient marking).
type FailingStore = storage.FailingStore

// --- Storage -----------------------------------------------------------

// BlockStore is the backing-store interface managers persist to.
type BlockStore = storage.BlockStore

// LatencyModel describes a storage device's timing.
type LatencyModel = storage.LatencyModel

// Latency models of the paper's devices.
func LocalDisk() LatencyModel     { return storage.LocalDisk() }
func NetworkServer() LatencyModel { return storage.NetworkServer() }

// --- Backings ------------------------------------------------------------

// Backing constructors; see the corresponding types above. These exist on
// the facade because external users cannot import the internal packages.
type (
	FileBacking = manager.FileBacking
	SwapBacking = manager.SwapBacking
)

// NewFileBacking maps managed segments to named files in a store.
func NewFileBacking(store BlockStore) *FileBacking { return manager.NewFileBacking(store) }

// NewSwapBacking persists anonymous pages to per-segment swap files.
func NewSwapBacking(store BlockStore) *SwapBacking { return manager.NewSwapBacking(store) }

// NewCompressedBacking stores pages run-length encoded (§2.1 compression).
func NewCompressedBacking(store BlockStore) *CompressedBacking {
	return manager.NewCompressedBacking(store)
}

// NewReplicatedBacking writes every page to two backings (§2.1 replicated
// writeback).
func NewReplicatedBacking(primary, replica Backing) *ReplicatedBacking {
	return manager.NewReplicatedBacking(primary, replica)
}

// NewLoggingBacking journals writebacks ahead of their home locations
// (§2.1 logging; database commit ordering).
func NewLoggingBacking(store BlockStore, logName string) *LoggingBacking {
	return manager.NewLoggingBacking(store, logName)
}

// --- Manager specializations ----------------------------------------------

// Prefetch is the read-ahead manager; AsyncDevice models its overlapped
// storage device.
type (
	Prefetch    = manager.Prefetch
	AsyncDevice = manager.AsyncDevice
)

// NewAsyncDevice builds an overlapped storage device on the system clock.
func NewAsyncDevice(sys *System, model LatencyModel) *AsyncDevice {
	return manager.NewAsyncDevice(sys.Clock, model)
}

// NewColoring builds a page-coloring manager over the system's SPCM.
func NewColoring(sys *System, cfg ManagerConfig, colors int) (*Generic, error) {
	cfg.Source = sys.SPCM
	return manager.NewColoring(sys.Kernel, cfg, colors)
}

// NewPlacement builds a NUMA-placement manager over the system's SPCM.
func NewPlacement(sys *System, cfg ManagerConfig, nodeOf func(f Fault) int) (*Generic, error) {
	cfg.Source = sys.SPCM
	return manager.NewPlacement(sys.Kernel, cfg, nodeOf)
}

// Fault delivery modes (ManagerConfig.Delivery).
const (
	DeliverSameProcess     = kernel.DeliverSameProcess
	DeliverSeparateProcess = kernel.DeliverSeparateProcess
)

// Fault-delivery scheduler modes (Config.Scheduler). SerialScheduler (the
// default) drains deliveries deterministically on the faulting goroutine;
// ConcurrentScheduler gives every segment manager its own worker goroutine
// so applications on different managers fault in parallel. Call
// System.Shutdown when done with a concurrent system to retire the workers.
const (
	SerialScheduler     = "serial"
	ConcurrentScheduler = "concurrent"
)

// --- User-level algorithms --------------------------------------------------

// NewCheckpointer builds a concurrent checkpointer (wire its Hook into the
// manager's Protection and Attach it to the segment).
func NewCheckpointer(sys *System) *Checkpointer {
	return apps.NewCheckpointer(sys.Kernel, sys.Store)
}

// NewWriteBarrier builds a concurrent-GC write barrier for a segment.
func NewWriteBarrier(sys *System, seg *Segment) *WriteBarrier {
	return apps.NewWriteBarrier(sys.Kernel, seg)
}

// NewMP3D builds the §1 memory-adaptive particle simulation.
func NewMP3D(sys *System, backing Backing, income float64) (*MP3D, error) {
	return apps.NewMP3D(sys.Kernel, sys.SPCM, backing, income)
}

// ParallelQuery is the §1 XPRS-style adaptive-parallelism query model.
type ParallelQuery = apps.ParallelQuery

// NewParallelQuery builds a query executor registered with the SPCM.
func NewParallelQuery(sys *System, backing Backing, income float64) (*ParallelQuery, error) {
	return apps.NewParallelQuery(sys.Kernel, sys.SPCM, backing, income)
}

// --- Traces ------------------------------------------------------------------

// Trace is a recorded page-reference string; Recorder captures one.
type (
	Trace    = trace.Trace
	TraceRef = trace.Ref
	Recorder = trace.Recorder
)

// NewRecorder wraps the system's kernel to capture references.
func NewRecorder(sys *System) *Recorder { return trace.NewRecorder(sys.Kernel) }

// DecodeTrace parses the text trace format.
func DecodeTrace(r io.Reader) (*Trace, error) { return trace.Decode(r) }

// ReplayTrace replays a trace against the system, creating segments under
// the given manager.
func ReplayTrace(sys *System, t *Trace, mgr *Generic) (trace.ReplayResult, error) {
	return trace.Replay(sys.Kernel, t, mgr.CreateManagedSegment)
}
