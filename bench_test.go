// Benchmarks regenerating every table and figure of the paper's evaluation,
// plus ablations of the design choices called out in DESIGN.md.
//
// All timings are *virtual* machine time from the calibrated cost model —
// the quantity the paper reports — surfaced through b.ReportMetric as
// custom metrics (virt-µs, virt-ms, …). The Go ns/op column measures only
// the simulator's own speed and is not meaningful for the reproduction.
//
// Run:
//
//	go test -bench=. -benchmem
//
// and compare the virt-* metrics with the paper-* metrics reported
// alongside them.
package epcm_test

import (
	"testing"
	"time"

	"epcm"
	"epcm/internal/apps"
	"epcm/internal/db"
	"epcm/internal/defaultmgr"
	"epcm/internal/kernel"
	"epcm/internal/manager"
	"epcm/internal/phys"
	"epcm/internal/sim"
	"epcm/internal/spcm"
	"epcm/internal/storage"
	"epcm/internal/ultrix"
	"epcm/internal/workload"
)

// --- Table 1: system primitive times -------------------------------------

// minimalFaultSystem builds a small V++ machine with an app manager whose
// free list is pre-stocked, so a fault is exactly the minimal path.
func minimalFaultSystem(b *testing.B, delivery kernel.DeliveryMode) (*epcm.System, *kernel.Segment) {
	b.Helper()
	sys, err := epcm.Boot(epcm.Config{MemoryBytes: 16 << 20, StoreData: true})
	if err != nil {
		b.Fatal(err)
	}
	g, _, err := sys.NewAppManager(epcm.ManagerConfig{Name: "bench", Delivery: delivery, RequestBatch: 2048}, 1e9)
	if err != nil {
		b.Fatal(err)
	}
	seg, err := g.CreateManagedSegment("bench-seg")
	if err != nil {
		b.Fatal(err)
	}
	if err := g.EnsureFree(2048); err != nil {
		b.Fatal(err)
	}
	return sys, seg
}

// BenchmarkTable1MinimalFaultFaultingProcess measures row 1: the V++
// minimal fault handled by the faulting process. Paper: 107 µs (Ultrix
// equivalent 175 µs).
func BenchmarkTable1MinimalFaultFaultingProcess(b *testing.B) {
	sys, seg := minimalFaultSystem(b, kernel.DeliverSameProcess)
	var total time.Duration
	for i := 0; i < b.N; i++ {
		start := sys.Clock.Now()
		if err := sys.Kernel.Access(seg, int64(i%2000), epcm.Write); err != nil {
			b.Fatal(err)
		}
		if i < 2000 {
			total += sys.Clock.Now() - start
		}
	}
	n := b.N
	if n > 2000 {
		n = 2000
	}
	b.ReportMetric(float64(total.Microseconds())/float64(n), "virt-µs/fault")
	b.ReportMetric(107, "paper-µs")
}

// BenchmarkTable1MinimalFaultDefaultManager measures row 2: the minimal
// fault through the separate-process default manager. Paper: 379 µs.
func BenchmarkTable1MinimalFaultDefaultManager(b *testing.B) {
	sys, seg := minimalFaultSystem(b, kernel.DeliverSeparateProcess)
	var total time.Duration
	for i := 0; i < b.N; i++ {
		start := sys.Clock.Now()
		if err := sys.Kernel.Access(seg, int64(i%2000), epcm.Write); err != nil {
			b.Fatal(err)
		}
		if i < 2000 {
			total += sys.Clock.Now() - start
		}
	}
	n := b.N
	if n > 2000 {
		n = 2000
	}
	b.ReportMetric(float64(total.Microseconds())/float64(n), "virt-µs/fault")
	b.ReportMetric(379, "paper-µs")
}

// BenchmarkTable1Read4K measures row 3: a cached-file 4 KB block read
// through the UIO interface. Paper: V++ 222 µs, Ultrix 211 µs.
func BenchmarkTable1Read4K(b *testing.B) {
	sys, err := epcm.Boot(epcm.Config{MemoryBytes: 16 << 20, StoreData: true})
	if err != nil {
		b.Fatal(err)
	}
	sys.Store.Preload("f", 4, nil)
	f, err := sys.OpenFile("f")
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 4096)
	if err := f.ReadBlock(0, buf); err != nil { // warm
		b.Fatal(err)
	}
	start := sys.Clock.Now()
	for i := 0; i < b.N; i++ {
		if err := f.ReadBlock(0, buf); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64((sys.Clock.Now()-start).Microseconds())/float64(b.N), "virt-µs/read")
	b.ReportMetric(222, "paper-µs")
}

// BenchmarkTable1Write4K measures row 4: a cached-file 4 KB block write.
// Paper: V++ 203 µs, Ultrix 311 µs.
func BenchmarkTable1Write4K(b *testing.B) {
	sys, err := epcm.Boot(epcm.Config{MemoryBytes: 16 << 20, StoreData: true})
	if err != nil {
		b.Fatal(err)
	}
	f, err := sys.OpenFile("f")
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 4096)
	if err := f.WriteBlock(0, buf); err != nil { // allocate
		b.Fatal(err)
	}
	start := sys.Clock.Now()
	for i := 0; i < b.N; i++ {
		if err := f.WriteBlock(0, buf); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64((sys.Clock.Now()-start).Microseconds())/float64(b.N), "virt-µs/write")
	b.ReportMetric(203, "paper-µs")
}

// BenchmarkTable1UltrixBaseline measures the Ultrix side of Table 1 (fault
// 175 µs, read 211 µs, write 311 µs) plus the §3.1 user-level fault handler
// (152 µs).
func BenchmarkTable1UltrixBaseline(b *testing.B) {
	var clock sim.Clock
	store := storage.NewStore(&clock, storage.LocalDisk(), 4096)
	store.Preload("f", 4, nil)
	s := ultrix.New(&clock, sim.DECstation5000(), store, 4096)
	region := s.NewRegion("heap")
	f := s.OpenFile("f")
	f.Read4K(0)
	f.Write4K(0)

	var fault, read, write, user time.Duration
	faultSamples := 0
	for i := 0; i < b.N; i++ {
		if i < 2000 {
			fault += s.MinimalFault(region, int64(1000+i))
			faultSamples++
		}

		t0 := clock.Now()
		f.Read4K(0)
		read += clock.Now() - t0

		t0 = clock.Now()
		f.Write4K(0)
		write += clock.Now() - t0

		region.Touch(0, true)
		region.Mprotect(0, true)
		t0 = clock.Now()
		region.Touch(0, false)
		user += clock.Now() - t0 - 0 // the touch is the 152µs handler path
	}
	n := float64(b.N)
	b.ReportMetric(float64(fault.Microseconds())/float64(faultSamples), "virt-µs/fault")
	b.ReportMetric(float64(read.Microseconds())/n, "virt-µs/read")
	b.ReportMetric(float64(write.Microseconds())/n, "virt-µs/write")
	b.ReportMetric(float64(user.Microseconds())/n-30, "virt-µs/userfault-minus-mprotect")
	b.ReportMetric(175, "paper-µs-fault")
}

// BenchmarkUserLevelFaultHandler measures §3.1's comparison: the Ultrix
// user-level fault handler (152 µs) is >50% more expensive than a *full*
// V++ fault (107 µs).
func BenchmarkUserLevelFaultHandler(b *testing.B) {
	var clock sim.Clock
	store := storage.NewStore(&clock, storage.Prefilled(), 4096)
	s := ultrix.New(&clock, sim.DECstation5000(), store, 4096)
	region := s.NewRegion("heap")
	region.Touch(0, true)
	var total time.Duration
	for i := 0; i < b.N; i++ {
		region.Mprotect(0, true)
		t0 := clock.Now()
		region.Touch(0, false)
		total += clock.Now() - t0
	}
	b.ReportMetric(float64(total.Microseconds())/float64(b.N), "virt-µs/userfault")
	b.ReportMetric(152, "paper-µs")
	b.ReportMetric(107, "paper-µs-vpp-full-fault")
}

// --- Tables 2 and 3: application runs -------------------------------------

func benchWorkload(b *testing.B, spec workload.Spec) {
	cal, err := workload.Calibrated(spec)
	if err != nil {
		b.Fatal(err)
	}
	var vppMS, ultMS, calls, migrates float64
	for i := 0; i < b.N; i++ {
		vr, err := workload.NewVppRunner(0)
		if err != nil {
			b.Fatal(err)
		}
		ve, vc, err := workload.Run(vr, cal)
		if err != nil {
			b.Fatal(err)
		}
		ur := workload.NewUltrixRunner(0)
		ue, _, err := workload.Run(ur, cal)
		if err != nil {
			b.Fatal(err)
		}
		vppMS = float64(ve.Milliseconds())
		ultMS = float64(ue.Milliseconds())
		calls = float64(vc.ManagerCalls)
		migrates = float64(vc.MigrateCalls)
	}
	b.ReportMetric(vppMS, "virt-ms-vpp")
	b.ReportMetric(ultMS, "virt-ms-ultrix")
	b.ReportMetric(float64(spec.PaperVppElapsed.Milliseconds()), "paper-ms-vpp")
	b.ReportMetric(float64(spec.UltrixElapsed.Milliseconds()), "paper-ms-ultrix")
	b.ReportMetric(calls, "mgr-calls")
	b.ReportMetric(float64(spec.PaperCalls), "paper-calls")
	b.ReportMetric(migrates, "migrate-calls")
	b.ReportMetric(float64(spec.PaperMigrates), "paper-migrates")
	// Table 3 column 3: overhead = (379-175)µs × calls.
	b.ReportMetric(calls*0.204, "overhead-ms")
	b.ReportMetric(float64(spec.PaperOverhead.Milliseconds()), "paper-overhead-ms")
}

// BenchmarkTable2And3Diff regenerates the diff rows of Tables 2 and 3.
func BenchmarkTable2And3Diff(b *testing.B) { benchWorkload(b, workload.Diff()) }

// BenchmarkTable2And3Uncompress regenerates the uncompress rows.
func BenchmarkTable2And3Uncompress(b *testing.B) { benchWorkload(b, workload.Uncompress()) }

// BenchmarkTable2And3Latex regenerates the latex rows.
func BenchmarkTable2And3Latex(b *testing.B) { benchWorkload(b, workload.Latex()) }

// --- Table 4: database transaction processing ------------------------------

func benchTable4(b *testing.B, cfg db.MemoryConfig) {
	paper := db.PaperTable4()[cfg]
	var avg, worst float64
	for i := 0; i < b.N; i++ {
		r := db.New(cfg, db.DefaultParams()).Run()
		if r.Deadlocked != 0 {
			b.Fatalf("%d deadlocked", r.Deadlocked)
		}
		avg = float64(r.Average().Milliseconds())
		worst = float64(r.Worst().Milliseconds())
	}
	b.ReportMetric(avg, "virt-ms-avg")
	b.ReportMetric(worst, "virt-ms-worst")
	b.ReportMetric(float64(paper[0].Milliseconds()), "paper-ms-avg")
	b.ReportMetric(float64(paper[1].Milliseconds()), "paper-ms-worst")
}

// BenchmarkTable4NoIndex: joins scan relations under escalated S locks.
// Paper: 866 ms average, 3770 ms worst.
func BenchmarkTable4NoIndex(b *testing.B) { benchTable4(b, db.NoIndex) }

// BenchmarkTable4IndexInMemory: indices resident. Paper: 43 / 410 ms.
func BenchmarkTable4IndexInMemory(b *testing.B) { benchTable4(b, db.IndexInMemory) }

// BenchmarkTable4IndexWithPaging: 1 MB of index transparently paged.
// Paper: 575 / 3930 ms.
func BenchmarkTable4IndexWithPaging(b *testing.B) { benchTable4(b, db.IndexWithPaging) }

// BenchmarkTable4IndexRegeneration: application-controlled discard and
// in-memory rebuild. Paper: 55 / 680 ms.
func BenchmarkTable4IndexRegeneration(b *testing.B) { benchTable4(b, db.IndexRegeneration) }

// --- Ablations --------------------------------------------------------------

// BenchmarkAblationFaultDelivery compares the two fault-delivery paths of
// §2.1: same-process upcall vs separate manager process over IPC.
func BenchmarkAblationFaultDelivery(b *testing.B) {
	for _, d := range []kernel.DeliveryMode{kernel.DeliverSameProcess, kernel.DeliverSeparateProcess} {
		d := d
		b.Run(d.String(), func(b *testing.B) {
			sys, seg := minimalFaultSystem(b, d)
			var total time.Duration
			for i := 0; i < b.N; i++ {
				start := sys.Clock.Now()
				if err := sys.Kernel.Access(seg, int64(i%2000), epcm.Write); err != nil {
					b.Fatal(err)
				}
				if i < 2000 {
					total += sys.Clock.Now() - start
				}
			}
			b.ReportMetric(float64(total.Microseconds())/float64(min(b.N, 2000)), "virt-µs/fault")
		})
	}
}

// BenchmarkAblationZeroFill isolates the security zero-fill: §3.1
// attributes most of the 68 µs V++/Ultrix minimal-fault gap to the 75 µs
// page zeroing Ultrix performs on each allocation.
func BenchmarkAblationZeroFill(b *testing.B) {
	cost := sim.DECstation5000()
	with := cost.UltrixMinimalFault()
	without := with - cost.ZeroPage
	b.ReportMetric(float64(with.Microseconds()), "virt-µs-with-zero")
	b.ReportMetric(float64(without.Microseconds()), "virt-µs-without-zero")
	b.ReportMetric(float64(cost.VppMinimalFaultSameProcess().Microseconds()), "virt-µs-vpp")
	for i := 0; i < b.N; i++ {
		_ = cost.UltrixMinimalFault()
	}
}

// BenchmarkAblationBatchedUnprotect measures the default manager's §2.3
// fault-amortization: sampling faults for a 256-page scan at batch sizes
// 1, 4, 8 and 16.
func BenchmarkAblationBatchedUnprotect(b *testing.B) {
	for _, batch := range []int{1, 4, 8, 16} {
		batch := batch
		b.Run(name("batch", batch), func(b *testing.B) {
			var faults, micros float64
			for i := 0; i < b.N; i++ {
				mem := phys.NewMemory(phys.Config{FrameSize: 4096, TotalBytes: 16 << 20, StoreData: false})
				var clock sim.Clock
				k := kernel.New(mem, &clock, sim.DECstation5000(), kernel.Config{})
				store := storage.NewStore(&clock, storage.NetworkServer(), 4096)
				store.Preload("scan", 256, nil)
				pool, err := manager.NewFixedPool(k, 2048, 0)
				if err != nil {
					b.Fatal(err)
				}
				d, err := defaultmgr.New(k, store, defaultmgr.Config{Source: pool, UnprotectBatch: batch})
				if err != nil {
					b.Fatal(err)
				}
				f, err := d.OpenFile("scan")
				if err != nil {
					b.Fatal(err)
				}
				buf := make([]byte, 4096)
				for p := int64(0); p < 256; p++ {
					if err := f.ReadBlock(p, buf); err != nil {
						b.Fatal(err)
					}
				}
				if err := d.BeginSampleInterval(); err != nil {
					b.Fatal(err)
				}
				start := clock.Now()
				for p := int64(0); p < 256; p++ {
					if err := k.Access(f.Segment(), p, epcm.Read); err != nil {
						b.Fatal(err)
					}
				}
				faults = float64(d.Stats().SampleFaults)
				micros = float64((clock.Now() - start).Microseconds())
			}
			b.ReportMetric(faults, "sample-faults")
			b.ReportMetric(micros, "virt-µs-total")
		})
	}
}

// BenchmarkAblationDiscard measures the discardable-page optimization (§4,
// Subramanian): reclaiming 128 dirty pages with and without discard.
func BenchmarkAblationDiscard(b *testing.B) {
	for _, ignore := range []bool{false, true} {
		ignore := ignore
		label := "discard-honored"
		if ignore {
			label = "discard-ignored"
		}
		b.Run(label, func(b *testing.B) {
			var micros, writebacks float64
			for i := 0; i < b.N; i++ {
				mem := phys.NewMemory(phys.Config{FrameSize: 4096, TotalBytes: 4 << 20, StoreData: true})
				var clock sim.Clock
				k := kernel.New(mem, &clock, sim.DECstation5000(), kernel.Config{})
				store := storage.NewStore(&clock, storage.LocalDisk(), 4096)
				pool, err := manager.NewFixedPool(k, 256, 0)
				if err != nil {
					b.Fatal(err)
				}
				g, err := manager.NewGeneric(k, manager.Config{
					Name: "gc", Backing: manager.NewSwapBacking(store),
					Source: pool, IgnoreDiscardable: ignore,
				})
				if err != nil {
					b.Fatal(err)
				}
				seg, _ := g.CreateManagedSegment("heap")
				for p := int64(0); p < 128; p++ {
					if err := k.Access(seg, p, epcm.Write); err != nil {
						b.Fatal(err)
					}
				}
				// The collector knows these pages are garbage.
				if err := k.ModifyPageFlags(kernel.AppCred, seg, 0, 128,
					epcm.FlagDiscardable, epcm.FlagReferenced); err != nil {
					b.Fatal(err)
				}
				start := clock.Now()
				if _, err := g.Reclaim(128, phys.AnyFrame()); err != nil {
					b.Fatal(err)
				}
				micros = float64((clock.Now() - start).Microseconds())
				writebacks = float64(g.Stats().Writebacks)
			}
			b.ReportMetric(micros/1000, "virt-ms-reclaim")
			b.ReportMetric(writebacks, "writebacks")
		})
	}
}

// BenchmarkAblationPrefetch measures §1's MP3D-style overlap: a sequential
// scan with compute per page, demand-paged vs read-ahead.
func BenchmarkAblationPrefetch(b *testing.B) {
	const pages = 128
	compute := 20 * time.Millisecond
	run := func(b *testing.B, depth int) time.Duration {
		mem := phys.NewMemory(phys.Config{FrameSize: 4096, TotalBytes: 8 << 20, StoreData: true})
		var clock sim.Clock
		k := kernel.New(mem, &clock, sim.DECstation5000(), kernel.Config{})
		store := storage.NewStore(&clock, storage.LocalDisk(), 4096)
		store.Preload("matrix", pages, nil)
		pool, err := manager.NewFixedPool(k, 1024, 0)
		if err != nil {
			b.Fatal(err)
		}
		var g *manager.Generic
		var pf *manager.Prefetch
		if depth > 0 {
			dev := manager.NewAsyncDevice(&clock, storage.LocalDisk())
			pf, err = manager.NewPrefetch(k, manager.Config{Name: "pf", Source: pool}, dev, store, depth)
			if err != nil {
				b.Fatal(err)
			}
			g = pf.Generic
		} else {
			fb := manager.NewFileBacking(store)
			g, err = manager.NewGeneric(k, manager.Config{Name: "demand", Backing: fb, Source: pool})
			if err != nil {
				b.Fatal(err)
			}
		}
		seg, _ := g.CreateManagedSegment("m")
		if pf != nil {
			pf.BindFile(seg, "matrix")
		} else {
			g.Backing().(*manager.FileBacking).BindFile(seg, "matrix")
		}
		start := clock.Now()
		for p := int64(0); p < pages; p++ {
			if err := k.Access(seg, p, epcm.Read); err != nil {
				b.Fatal(err)
			}
			clock.Advance(compute)
		}
		return clock.Now() - start
	}
	for _, depth := range []int{0, 2, 4, 8} {
		depth := depth
		b.Run(name("depth", depth), func(b *testing.B) {
			var elapsed time.Duration
			for i := 0; i < b.N; i++ {
				elapsed = run(b, depth)
			}
			b.ReportMetric(float64(elapsed.Milliseconds()), "virt-ms-scan")
			b.ReportMetric(float64(pages)*compute.Seconds()*1000, "virt-ms-pure-compute")
		})
	}
}

// BenchmarkAblationColoring measures §1/§2.4 page coloring: the cache miss
// ratio of a working set allocated color-aware vs first-fit.
func BenchmarkAblationColoring(b *testing.B) {
	const colors = 16
	run := func(b *testing.B, colored bool) float64 {
		mem := phys.NewMemory(phys.Config{FrameSize: 4096, TotalBytes: 8 << 20, CacheColors: colors, StoreData: true})
		var clock sim.Clock
		k := kernel.New(mem, &clock, sim.DECstation5000(), kernel.Config{})
		pool, err := manager.NewFixedPool(k, 1024, 0)
		if err != nil {
			b.Fatal(err)
		}
		cfg := manager.Config{Name: "color-bench", Source: pool}
		var g *manager.Generic
		if colored {
			g, err = manager.NewColoring(k, cfg, colors)
		} else {
			// First-fit: whatever frame comes off the free list. Seed the
			// free list with same-color frames to model an unlucky (but
			// perfectly possible) conventional allocation.
			cfg.Constraint = func(f kernel.Fault) phys.Range {
				return phys.Range{Color: 0, Node: phys.NodeAny}
			}
			g, err = manager.NewGeneric(k, cfg)
		}
		if err != nil {
			b.Fatal(err)
		}
		seg, _ := g.CreateManagedSegment("hot")
		for p := int64(0); p < colors; p++ {
			if err := k.Access(seg, p, epcm.Write); err != nil {
				b.Fatal(err)
			}
		}
		cache := phys.NewCache(colors, 2)
		for round := 0; round < 200; round++ {
			for p := int64(0); p < colors; p++ {
				cache.Access(seg.FrameAt(p))
			}
		}
		return cache.MissRatio()
	}
	for _, colored := range []bool{true, false} {
		colored := colored
		label := "colored"
		if !colored {
			label = "same-color-worst-case"
		}
		b.Run(label, func(b *testing.B) {
			var ratio float64
			for i := 0; i < b.N; i++ {
				ratio = run(b, colored)
			}
			b.ReportMetric(ratio, "miss-ratio")
		})
	}
}

// BenchmarkAblationAppendUnit measures §3.2's append allocation unit: the
// fault count for appending a 2 MB file at 4 KB vs 16 KB units.
func BenchmarkAblationAppendUnit(b *testing.B) {
	for _, unitPages := range []int{1, 4, 8} {
		unitPages := unitPages
		b.Run(name("unit-pages", unitPages), func(b *testing.B) {
			var faults, micros float64
			for i := 0; i < b.N; i++ {
				mem := phys.NewMemory(phys.Config{FrameSize: 4096, TotalBytes: 16 << 20, StoreData: false})
				var clock sim.Clock
				k := kernel.New(mem, &clock, sim.DECstation5000(), kernel.Config{})
				store := storage.NewStore(&clock, storage.NetworkServer(), 4096)
				pool, err := manager.NewFixedPool(k, 2048, 0)
				if err != nil {
					b.Fatal(err)
				}
				d, err := defaultmgr.New(k, store, defaultmgr.Config{Source: pool, AppendUnit: unitPages})
				if err != nil {
					b.Fatal(err)
				}
				f, err := d.OpenFile("out")
				if err != nil {
					b.Fatal(err)
				}
				buf := make([]byte, 4096)
				start := clock.Now()
				for p := int64(0); p < 512; p++ {
					if err := f.WriteBlock(p, buf); err != nil {
						b.Fatal(err)
					}
				}
				faults = float64(k.Stats().MissingFaults)
				micros = float64((clock.Now() - start).Microseconds())
			}
			b.ReportMetric(faults, "append-faults")
			b.ReportMetric(micros/1000, "virt-ms-append-2MB")
		})
	}
}

// BenchmarkAblationMarket measures the memory market: two jobs with 2:1
// incomes, each wanting more memory than it can afford, end up holding
// ~2:1 memory — income is the administrative allocation policy (§2.4).
func BenchmarkAblationMarket(b *testing.B) {
	var shareA, shareB float64
	for i := 0; i < b.N; i++ {
		policy := epcm.DefaultMarketPolicy()
		policy.FreeWhenUncontended = false
		sys, err := epcm.Boot(epcm.Config{MemoryBytes: 8 << 20, StoreData: false, Market: &policy})
		if err != nil {
			b.Fatal(err)
		}
		gA, aA, err := sys.NewAppManager(epcm.ManagerConfig{Name: "rich"}, 4)
		if err != nil {
			b.Fatal(err)
		}
		gB, aB, err := sys.NewAppManager(epcm.ManagerConfig{Name: "poor"}, 2)
		if err != nil {
			b.Fatal(err)
		}
		for step := 0; step < 300; step++ {
			sys.Clock.Advance(time.Second)
			sys.SPCM.SettleAll()
			if _, err := sys.SPCM.Enforce(); err != nil {
				b.Fatal(err)
			}
			if aA.Balance() > 0 {
				if _, err := sys.SPCM.RequestFrames(gA, 64, phys.AnyFrame()); err != nil {
					b.Fatal(err)
				}
			}
			if aB.Balance() > 0 {
				if _, err := sys.SPCM.RequestFrames(gB, 64, phys.AnyFrame()); err != nil {
					b.Fatal(err)
				}
			}
		}
		total := float64(aA.HeldPages() + aB.HeldPages())
		shareA = float64(aA.HeldPages()) / total
		shareB = float64(aB.HeldPages()) / total
	}
	b.ReportMetric(shareA, "share-income-4")
	b.ReportMetric(shareB, "share-income-2")
}

func name(prefix string, v int) string {
	return prefix + "-" + itoa(v)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// BenchmarkAblationUnixRetrofit measures §2.4's Unix retrofit: an
// externally-managed fault on the retrofitted conventional kernel
// (signal-path delivery) against the native V++ path.
func BenchmarkAblationUnixRetrofit(b *testing.B) {
	var clock sim.Clock
	store := storage.NewStore(&clock, storage.Prefilled(), 4096)
	s := ultrix.New(&clock, sim.DECstation5000(), store, 8192)
	s.SetPageCacheFile("db", benchExtManager{})
	var total time.Duration
	samples := 0
	for i := 0; i < b.N; i++ {
		d, err := s.MeasureExternalFault("db", int64(i%4096))
		if err != nil {
			b.Fatal(err)
		}
		if i < 2000 {
			total += d - sim.DECstation5000().UltrixRead4K() // isolate delivery
			samples++
		}
	}
	b.ReportMetric(float64(total.Microseconds())/float64(samples), "virt-µs/retrofit-fault")
	b.ReportMetric(107, "paper-µs-vpp-native")
}

type benchExtManager struct{}

func (benchExtManager) FillPage(string, int64, []byte) error { return nil }
func (benchExtManager) SelectVictims(file string, resident []int64, n int) []int64 {
	if n > len(resident) {
		n = len(resident)
	}
	return resident[:n]
}

// BenchmarkAblationCheckpoint measures concurrent checkpointing: total
// virtual time to checkpoint a 128-page segment while the application
// performs 32 writes, fault path vs an all-at-once stop-and-copy.
func BenchmarkAblationCheckpoint(b *testing.B) {
	var concurrent, stopCopy time.Duration
	for i := 0; i < b.N; i++ {
		// Concurrent: Begin, app writes (faulting saves), drain, Finish.
		{
			mem := phys.NewMemory(phys.Config{FrameSize: 4096, TotalBytes: 8 << 20, StoreData: true})
			var clock sim.Clock
			k := kernel.New(mem, &clock, sim.DECstation5000(), kernel.Config{})
			store := storage.NewStore(&clock, storage.Prefilled(), 4096)
			pool, err := manager.NewFixedPool(k, 512, 0)
			if err != nil {
				b.Fatal(err)
			}
			ck := apps.NewCheckpointer(k, store)
			g, err := manager.NewGeneric(k, manager.Config{Name: "app", Source: pool, Protection: ck.Hook()})
			if err != nil {
				b.Fatal(err)
			}
			seg, _ := g.CreateManagedSegment("heap")
			ck.Attach(g, seg)
			for p := int64(0); p < 128; p++ {
				if err := k.Access(seg, p, epcm.Write); err != nil {
					b.Fatal(err)
				}
			}
			start := clock.Now()
			if err := ck.Begin(); err != nil {
				b.Fatal(err)
			}
			for w := int64(0); w < 32; w++ {
				if err := k.Access(seg, w*3%128, epcm.Write); err != nil {
					b.Fatal(err)
				}
			}
			if err := ck.Finish(); err != nil {
				b.Fatal(err)
			}
			concurrent = clock.Now() - start
		}
		// Stop-and-copy: save all pages, then do the writes.
		{
			var clock sim.Clock
			cost := sim.DECstation5000()
			clock.Advance(128 * cost.CopyPage) // copy out
			// The 32 writes proceed with no faults afterwards.
			stopCopy = clock.Now()
		}
	}
	b.ReportMetric(float64(concurrent.Microseconds())/1000, "virt-ms-concurrent")
	b.ReportMetric(float64(stopCopy.Microseconds())/1000, "virt-ms-stopcopy-pause")
}

// BenchmarkAblationAdaptiveMemory measures the §1 space-time adaptation:
// fixed total work under a memory budget half the appetite, adaptive vs
// oblivious.
func BenchmarkAblationAdaptiveMemory(b *testing.B) {
	run := func(adaptive bool) (time.Duration, int64) {
		mem := phys.NewMemory(phys.Config{FrameSize: 4096, TotalBytes: 2 << 20, StoreData: false})
		var clock sim.Clock
		k := kernel.New(mem, &clock, sim.DECstation5000(), kernel.Config{})
		policy := epcm.DefaultMarketPolicy()
		policy.FreeWhenUncontended = false
		policy.SavingsTaxRate = 0
		s := spcm.New(k, policy)
		store := storage.NewStore(&clock, storage.LocalDisk(), 4096)
		m, err := apps.NewMP3D(k, s, manager.NewSwapBacking(store), 0.375)
		if err != nil {
			b.Fatal(err)
		}
		m.Adaptive = adaptive
		m.MaxPages = 200
		m.Tick = func() {
			s.SettleAll()
			if _, err := s.Enforce(); err != nil {
				b.Fatal(err)
			}
		}
		start := clock.Now()
		if _, err := m.RunWork(10000); err != nil {
			b.Fatal(err)
		}
		return clock.Now() - start, store.Reads() + store.Writes()
	}
	var at, ot time.Duration
	var aio, oio int64
	for i := 0; i < b.N; i++ {
		at, aio = run(true)
		ot, oio = run(false)
	}
	b.ReportMetric(at.Seconds(), "virt-s-adaptive")
	b.ReportMetric(ot.Seconds(), "virt-s-oblivious")
	b.ReportMetric(float64(aio), "io-adaptive")
	b.ReportMetric(float64(oio), "io-oblivious")
}

// BenchmarkAblationCompressedSwap measures the compressed-swap backing:
// reclaiming 128 sparse dirty pages through RLE vs plain swap writes.
func BenchmarkAblationCompressedSwap(b *testing.B) {
	run := func(compressed bool) (time.Duration, int64) {
		mem := phys.NewMemory(phys.Config{FrameSize: 4096, TotalBytes: 4 << 20, StoreData: true})
		var clock sim.Clock
		k := kernel.New(mem, &clock, sim.DECstation5000(), kernel.Config{})
		store := storage.NewStore(&clock, storage.LocalDisk(), 4096)
		pool, err := manager.NewFixedPool(k, 256, 0)
		if err != nil {
			b.Fatal(err)
		}
		var backing manager.Backing
		if compressed {
			backing = manager.NewCompressedBacking(store)
		} else {
			backing = manager.NewSwapBacking(store)
		}
		g, err := manager.NewGeneric(k, manager.Config{Name: "m", Source: pool, Backing: backing})
		if err != nil {
			b.Fatal(err)
		}
		seg, _ := g.CreateManagedSegment("heap")
		for p := int64(0); p < 128; p++ {
			if err := k.Access(seg, p, epcm.Write); err != nil {
				b.Fatal(err)
			}
			seg.FrameAt(p).Data()[7] = byte(p) // sparse dirty pages
		}
		if err := k.ModifyPageFlags(kernel.AppCred, seg, 0, 128, 0, epcm.FlagReferenced); err != nil {
			b.Fatal(err)
		}
		start := clock.Now()
		if _, err := g.Reclaim(128, phys.AnyFrame()); err != nil {
			b.Fatal(err)
		}
		return clock.Now() - start, store.Writes()
	}
	var ct, pt time.Duration
	var cw, pw int64
	for i := 0; i < b.N; i++ {
		ct, cw = run(true)
		pt, pw = run(false)
	}
	b.ReportMetric(float64(ct.Microseconds())/1000, "virt-ms-compressed")
	b.ReportMetric(float64(pt.Microseconds())/1000, "virt-ms-plain")
	b.ReportMetric(float64(cw), "disk-writes-compressed")
	b.ReportMetric(float64(pw), "disk-writes-plain")
}

// BenchmarkAblationReplacementPolicy measures the payoff of the paper's
// specializable "page replacement selection routines" (§2.2): a cyclic
// sequential scan over data twice the size of memory, under the default
// clock vs an application-supplied MRU policy (the classic DBMS scan
// policy).
func BenchmarkAblationReplacementPolicy(b *testing.B) {
	const dataPages, memFrames, passes = 256, 128, 4
	run := func(policy func([]manager.Victim) int) (time.Duration, int64) {
		mem := phys.NewMemory(phys.Config{FrameSize: 4096, TotalBytes: 2 << 20, StoreData: false})
		var clock sim.Clock
		k := kernel.New(mem, &clock, sim.DECstation5000(), kernel.Config{})
		store := storage.NewStore(&clock, storage.LocalDisk(), 4096)
		pool, err := manager.NewFixedPool(k, memFrames, 0)
		if err != nil {
			b.Fatal(err)
		}
		g, err := manager.NewGeneric(k, manager.Config{
			Name: "scan", Source: pool,
			Backing:      manager.NewSwapBacking(store),
			SelectVictim: policy,
			RequestBatch: 16,
		})
		if err != nil {
			b.Fatal(err)
		}
		seg, _ := g.CreateManagedSegment("data")
		start := clock.Now()
		for pass := 0; pass < passes; pass++ {
			for p := int64(0); p < dataPages; p++ {
				if err := k.Access(seg, p, epcm.Read); err != nil {
					b.Fatal(err)
				}
			}
		}
		return clock.Now() - start, g.Stats().Faults
	}
	var clockTime, mruTime time.Duration
	var clockFaults, mruFaults int64
	for i := 0; i < b.N; i++ {
		clockTime, clockFaults = run(nil)
		mruTime, mruFaults = run(manager.MRUVictim)
	}
	b.ReportMetric(clockTime.Seconds(), "virt-s-clock")
	b.ReportMetric(mruTime.Seconds(), "virt-s-mru")
	b.ReportMetric(float64(clockFaults), "faults-clock")
	b.ReportMetric(float64(mruFaults), "faults-mru")
}

// BenchmarkAblationParallelQuery measures §1's XPRS adaptation: degree of
// parallelism chosen by memory availability vs fixed maximum parallelism,
// on a machine that fits only ~3 workers' working sets.
func BenchmarkAblationParallelQuery(b *testing.B) {
	run := func(adaptive bool) (time.Duration, int, int64) {
		mem := phys.NewMemory(phys.Config{FrameSize: 4096, TotalBytes: 200 * 4096, StoreData: false})
		var clock sim.Clock
		k := kernel.New(mem, &clock, sim.DECstation5000(), kernel.Config{})
		s := spcm.New(k, epcm.DefaultMarketPolicy())
		store := storage.NewStore(&clock, storage.LocalDisk(), 4096)
		q, err := apps.NewParallelQuery(k, s, manager.NewSwapBacking(store), 1e6)
		if err != nil {
			b.Fatal(err)
		}
		q.Adaptive = adaptive
		elapsed, err := q.Run()
		if err != nil {
			b.Fatal(err)
		}
		return elapsed, q.Degree(), store.Reads() + store.Writes()
	}
	var at, ot time.Duration
	var ad, od int
	var aio, oio int64
	for i := 0; i < b.N; i++ {
		at, ad, aio = run(true)
		ot, od, oio = run(false)
	}
	b.ReportMetric(at.Seconds(), "virt-s-adaptive")
	b.ReportMetric(ot.Seconds(), "virt-s-oblivious")
	b.ReportMetric(float64(ad), "degree-adaptive")
	b.ReportMetric(float64(od), "degree-oblivious")
	b.ReportMetric(float64(aio), "io-adaptive")
	b.ReportMetric(float64(oio), "io-oblivious")
}

// BenchmarkExtensionLoadSweep extends the Table 4 experiment beyond the
// paper: transaction response versus arrival rate, per configuration. It
// shows where each configuration saturates — the indexed configurations
// absorb triple the paper's load; the scan configuration is already near
// saturation at 40 tps.
func BenchmarkExtensionLoadSweep(b *testing.B) {
	for _, tps := range []float64{20, 40, 60} {
		tps := tps
		b.Run(name("tps", int(tps)), func(b *testing.B) {
			var noIdx, inMem float64
			for i := 0; i < b.N; i++ {
				p := db.DefaultParams()
				p.ArrivalTPS = tps
				p.Transactions = 2000
				p.Warmup = 100
				noIdx = float64(db.New(db.NoIndex, p).Run().Average().Milliseconds())
				inMem = float64(db.New(db.IndexInMemory, p).Run().Average().Milliseconds())
			}
			b.ReportMetric(noIdx, "virt-ms-noindex")
			b.ReportMetric(inMem, "virt-ms-inmemory")
		})
	}
}
