// DBMS: the paper's §3.3 evaluation end-to-end — a simulated parallel
// database transaction-processing system (6 processors, 40 transactions
// per second, 95% DebitCredit / 5% joins, hierarchical locking) run in all
// four Table 4 memory configurations.
//
// The experiment demonstrates the paper's central claim: a space-time
// tradeoff (indices vs scans) can only be exploited when the application
// *knows* how much physical memory it has. With transparent paging, 1 MB
// of overcommit — under 1% of the database — destroys the index's benefit;
// with application-controlled memory, the DBMS discards and regenerates
// the index instead, keeping response times within ~30% of the fully
// resident case.
package main

import (
	"flag"
	"fmt"

	"epcm"
)

func main() {
	txns := flag.Int("txns", 4000, "transactions to simulate")
	tps := flag.Float64("tps", 40, "transaction arrival rate per second")
	cpus := flag.Int("cpus", 6, "processors")
	seed := flag.Uint64("seed", 1992, "random seed")
	flag.Parse()

	p := epcm.DefaultDBParams()
	p.Transactions = *txns
	p.ArrivalTPS = *tps
	p.Processors = *cpus
	p.Seed = *seed

	fmt.Printf("simulating %d transactions at %.0f tps on %d processors\n\n",
		p.Transactions, p.ArrivalTPS, p.Processors)
	fmt.Printf("%-22s %9s %12s %8s %8s %8s\n",
		"Configuration", "Avg (ms)", "Worst (ms)", "p95 (ms)", "Faults", "LockWait")

	var inMem, paging, regen int64
	for _, r := range epcm.RunDBAll(p) {
		fmt.Printf("%-22s %9d %12d %8d %8d %8d\n",
			r.Config,
			r.Average().Milliseconds(), r.Worst().Milliseconds(),
			r.Responses.Percentile(95).Milliseconds(),
			r.Faults, r.LockWaits)
		switch r.Config {
		case epcm.DBIndexInMemory:
			inMem = r.Average().Milliseconds()
		case epcm.DBIndexWithPaging:
			paging = r.Average().Milliseconds()
		case epcm.DBIndexRegeneration:
			regen = r.Average().Milliseconds()
		}
	}

	fmt.Println()
	if inMem > 0 {
		fmt.Printf("paging cost the index %4.1fx its in-memory response time;\n", float64(paging)/float64(inMem))
		fmt.Printf("application-controlled regeneration kept it within %4.2fx\n", float64(regen)/float64(inMem))
	}
	fmt.Println("\n(paper, Table 4: no-index 866/3770, in-memory 43/410,")
	fmt.Println(" paging 575/3930, regeneration 55/680 ms avg/worst)")
}
