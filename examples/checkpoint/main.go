// Checkpoint: the user-level virtual-memory algorithms the paper's §3.1
// argues benefit from cheap fault handling (citing Appel & Li) — concurrent
// checkpointing and a concurrent-GC write barrier — built on an
// application-specific segment manager.
//
// The checkpoint is consistent as of Begin even though the application
// keeps mutating: first writes fault to the manager, which saves the old
// page contents before enabling the write. The per-trapped-write cost on
// V++ is below the 152 µs Ultrix signal+mprotect handler that the same
// algorithm would pay on a conventional system.
package main

import (
	"fmt"
	"log"
	"time"

	"epcm/internal/apps"
	"epcm/internal/kernel"
	"epcm/internal/manager"
	"epcm/internal/phys"
	"epcm/internal/sim"
	"epcm/internal/storage"
)

const pages = 64

func main() {
	mem := phys.NewMemory(phys.Config{FrameSize: 4096, TotalBytes: 16 << 20, StoreData: true})
	var clock sim.Clock
	k := kernel.New(mem, &clock, sim.DECstation5000(), kernel.Config{})
	store := storage.NewStore(&clock, storage.LocalDisk(), 4096)
	pool, err := manager.NewFixedPool(k, 1024, 0)
	if err != nil {
		log.Fatal(err)
	}

	ckpt := apps.NewCheckpointer(k, store)
	mgr, err := manager.NewGeneric(k, manager.Config{
		Name:       "app-manager",
		Source:     pool,
		Protection: ckpt.Hook(),
	})
	if err != nil {
		log.Fatal(err)
	}
	seg, err := mgr.CreateManagedSegment("heap")
	if err != nil {
		log.Fatal(err)
	}
	ckpt.Attach(mgr, seg)

	// Build application state.
	for p := int64(0); p < pages; p++ {
		if err := k.Access(seg, p, kernel.Write); err != nil {
			log.Fatal(err)
		}
		seg.FrameAt(p).Data()[0] = byte(p)
	}

	// Take a checkpoint while the application keeps writing.
	if err := ckpt.Begin(); err != nil {
		log.Fatal(err)
	}
	start := clock.Now()
	appWrites := []int64{3, 9, 9, 17, 40}
	for _, p := range appWrites {
		if err := k.Access(seg, p, kernel.Write); err != nil {
			log.Fatal(err)
		}
		seg.FrameAt(p).Data()[0] = 0xFF // post-checkpoint value
	}
	mutationTime := clock.Now() - start
	if err := ckpt.Finish(); err != nil {
		log.Fatal(err)
	}

	img, err := ckpt.Image(1, pages)
	if err != nil {
		log.Fatal(err)
	}
	consistent := true
	for p := int64(0); p < pages; p++ {
		if img[p][0] != byte(p) {
			consistent = false
		}
	}
	fmt.Printf("checkpoint of %d pages: consistent as of Begin = %v\n", pages, consistent)
	fmt.Printf("  saved in fault path: %d pages, drained in background: %d pages\n",
		ckpt.FaultSaves(), ckpt.DrainSaves())
	fmt.Printf("  application's %d mid-checkpoint writes cost %v total\n",
		len(appWrites), mutationTime.Round(time.Microsecond))
	fmt.Printf("  (the same writes through an Ultrix signal handler: %v of fault cost alone)\n",
		time.Duration(ckpt.FaultSaves())*152*time.Microsecond)

	// The write barrier: a concurrent GC's remembered set.
	wb := apps.NewWriteBarrier(k, seg)
	mgr2, err := manager.NewGeneric(k, manager.Config{
		Name:   "gc-manager",
		Source: pool,
		Protection: func(f kernel.Fault) error {
			return wb.Hook()(f)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	// Hand the segment to the GC's manager for the mark phase.
	mgr2.Manage(seg)
	if err := wb.Begin(); err != nil {
		log.Fatal(err)
	}
	for _, p := range []int64{5, 5, 12} {
		if err := k.Access(seg, p, kernel.Write); err != nil {
			log.Fatal(err)
		}
	}
	written := wb.End()
	fmt.Printf("\nGC write barrier recorded pages %v with %d faults (duplicates free)\n",
		written, wb.Faults())
}
