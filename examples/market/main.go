// Market: the SPCM's dram memory market (§2.4) with competing batch jobs.
//
// Each job earns an income of I drams per second and pays M·D·T drams to
// hold M megabytes for T seconds. A batch job saves up until it can afford
// a useful time slice of memory (querying the SPCM for the expected wait),
// runs, then releases its memory and goes quiescent — the paper's batch
// scheduling discipline. Incomes are the administrative policy: a job with
// twice the income gets twice the machine over time.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"epcm"
	"epcm/internal/manager"
	"epcm/internal/phys"
)

type job struct {
	name    string
	mgr     *manager.Generic
	account *epcm.Account
	want    int           // pages per slice
	slice   time.Duration // how long a slice runs
	runs    int
	heldFor time.Duration
	running bool
	runEnd  time.Duration
}

func main() {
	minutes := flag.Int("minutes", 20, "simulated minutes")
	flag.Parse()

	policy := epcm.DefaultMarketPolicy()
	policy.FreeWhenUncontended = false // always charge: a busy machine
	sys, err := epcm.Boot(epcm.Config{MemoryBytes: 16 << 20, StoreData: false, Market: &policy})
	if err != nil {
		log.Fatal(err)
	}

	mkJob := func(name string, income float64, wantMB int, slice time.Duration) *job {
		mgr, account, err := sys.NewAppManager(epcm.ManagerConfig{Name: name}, income)
		if err != nil {
			log.Fatal(err)
		}
		return &job{name: name, mgr: mgr, account: account, want: wantMB * 256, slice: slice}
	}
	jobs := []*job{
		mkJob("simulation-A", 8, 8, 30*time.Second), // income 8 drams/s, wants 8 MB slices
		mkJob("simulation-B", 4, 8, 30*time.Second), // same appetite, half the income
		mkJob("small-C", 2, 2, 20*time.Second),      // modest job
	}

	end := time.Duration(*minutes) * time.Minute
	for sys.Clock.Now() < end {
		sys.Clock.Advance(time.Second)
		sys.SPCM.SettleAll()
		if _, err := sys.SPCM.Enforce(); err != nil {
			log.Fatal(err)
		}
		for _, j := range jobs {
			j.step(sys)
		}
	}

	fmt.Printf("after %v of contended operation (incomes 8 : 4 : 2 drams/s):\n\n", end)
	fmt.Printf("%-14s %8s %12s %12s %10s %10s\n", "Job", "Slices", "MB-seconds", "Rent paid", "Tax paid", "Balance")
	var totalMBs float64
	for _, j := range jobs {
		totalMBs += j.mbSeconds()
	}
	for _, j := range jobs {
		fmt.Printf("%-14s %8d %12.0f %12.1f %10.1f %10.1f\n",
			j.name, j.runs, j.mbSeconds(), j.account.RentPaid(), j.account.TaxPaid(), j.account.Balance())
	}
	fmt.Printf("\nmachine share: ")
	for i, j := range jobs {
		if i > 0 {
			fmt.Print(" : ")
		}
		fmt.Printf("%.0f%%", 100*j.mbSeconds()/totalMBs)
	}
	fmt.Println("  (income ratio 57% : 29% : 14%)")
}

func (j *job) mbSeconds() float64 {
	return j.heldFor.Seconds() * float64(j.want) / 256
}

// step advances the job's save-up-then-run state machine by one tick.
func (j *job) step(sys *epcm.System) {
	now := sys.Clock.Now()
	if j.running {
		j.heldFor += time.Second
		if now >= j.runEnd {
			// Slice over: page out and go quiescent (return the memory).
			if _, err := j.mgr.ReturnFreeFrames(j.mgr.FreeFrames()); err != nil {
				log.Fatal(err)
			}
			j.running = false
		}
		return
	}
	// Quiescent: wait until the slice is affordable, then request memory.
	if sys.SPCM.EstimateWait(j.account, j.want, j.slice) > 0 {
		return
	}
	got, err := sys.SPCM.RequestFrames(j.mgr, j.want, phys.AnyFrame())
	if err != nil {
		log.Fatal(err)
	}
	if got < j.want/2 {
		// Not enough memory available right now; give back and retry later.
		if _, err := j.mgr.ReturnFreeFrames(got); err != nil {
			log.Fatal(err)
		}
		return
	}
	j.running = true
	j.runs++
	j.runEnd = now + j.slice
}
