// Prefetch: the paper's §1 motivating example — a large-scale scientific
// computation (MP3D-style particle simulation) that scans a dataset bigger
// than physical memory once per simulated time step. "Scientific
// computations using large data sets can often predict their data access
// patterns well in advance, which allows the disk access latency to be
// overlapped with current computation, if efficient application-directed
// readahead and writeback are supported by the operating system."
//
// An application-specific prefetching segment manager (specialized from the
// generic manager) overlaps page fetches with the computation; the demand-
// paged run serializes them.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"epcm"
	"epcm/internal/kernel"
	"epcm/internal/manager"
	"epcm/internal/phys"
	"epcm/internal/sim"
	"epcm/internal/storage"
)

func main() {
	pages := flag.Int64("pages", 512, "dataset size in 4 KB pages")
	computeMS := flag.Int("compute", 20, "computation per page (ms)")
	depth := flag.Int("depth", 8, "read-ahead depth in pages")
	flag.Parse()
	compute := time.Duration(*computeMS) * time.Millisecond

	demand := run(*pages, compute, 0)
	prefetch := run(*pages, compute, *depth)
	pure := time.Duration(*pages) * compute

	fmt.Printf("scan of %d pages with %v compute per page:\n", *pages, compute)
	fmt.Printf("  pure computation          %v\n", pure)
	fmt.Printf("  demand paging             %v  (+%d%% over compute)\n",
		demand, 100*(demand-pure)/pure)
	fmt.Printf("  prefetch depth %-2d         %v  (+%d%% over compute)\n",
		*depth, prefetch, 100*(prefetch-pure)/pure)
	fmt.Printf("  speedup from read-ahead   %.2fx\n", float64(demand)/float64(prefetch))
}

func run(pages int64, compute time.Duration, depth int) time.Duration {
	mem := phys.NewMemory(phys.Config{FrameSize: 4096, TotalBytes: 64 << 20, StoreData: true})
	var clock sim.Clock
	k := kernel.New(mem, &clock, sim.DECstation5000(), kernel.Config{})
	store := storage.NewStore(&clock, storage.LocalDisk(), 4096)
	store.Preload("particles", pages, nil)
	pool, err := manager.NewFixedPool(k, pages+64, 0)
	if err != nil {
		log.Fatal(err)
	}

	var g *manager.Generic
	var pf *manager.Prefetch
	if depth > 0 {
		dev := manager.NewAsyncDevice(&clock, storage.LocalDisk())
		pf, err = manager.NewPrefetch(k, manager.Config{Name: "mp3d", Source: pool}, dev, store, depth)
		if err != nil {
			log.Fatal(err)
		}
		g = pf.Generic
	} else {
		fb := manager.NewFileBacking(store)
		g, err = manager.NewGeneric(k, manager.Config{Name: "demand", Backing: fb, Source: pool})
		if err != nil {
			log.Fatal(err)
		}
	}
	seg, err := g.CreateManagedSegment("particles")
	if err != nil {
		log.Fatal(err)
	}
	if pf != nil {
		pf.BindFile(seg, "particles")
	} else {
		g.Backing().(*manager.FileBacking).BindFile(seg, "particles")
	}

	start := clock.Now()
	for p := int64(0); p < pages; p++ {
		if err := k.Access(seg, p, epcm.Read); err != nil {
			log.Fatal(err)
		}
		clock.Advance(compute) // the simulation step for this page's particles
	}
	return clock.Now() - start
}
