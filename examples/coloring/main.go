// Coloring: application-controlled physical page placement (§1, §2.4).
//
// "An application can allocate physical pages to virtual pages to minimize
// mapping collisions in physically addressed caches and TLBs, implementing
// page coloring on an application-specific basis."
//
// A hot working set the size of the cache is allocated twice: by a
// color-aware segment manager that requests one frame per cache color from
// the SPCM, and by an unlucky conventional allocation whose frames share
// colors. The physically-indexed cache model shows the difference: near-
// zero misses vs persistent conflict misses.
//
// The same constraint mechanism drives NUMA placement on a DASH-like
// machine: the second half of the demo pins alternating pages to nodes.
package main

import (
	"fmt"
	"log"

	"epcm"
	"epcm/internal/kernel"
	"epcm/internal/manager"
	"epcm/internal/phys"
	"epcm/internal/sim"
)

const colors = 16

func main() {
	missColored := cacheMissRatio(true)
	missConflict := cacheMissRatio(false)
	fmt.Printf("hot set of %d pages, %d-color 2-way physically-indexed cache:\n", colors, colors)
	fmt.Printf("  color-aware allocation   miss ratio %.3f\n", missColored)
	fmt.Printf("  conflicting allocation   miss ratio %.3f\n", missConflict)

	placement()
}

func cacheMissRatio(colored bool) float64 {
	mem := phys.NewMemory(phys.Config{FrameSize: 4096, TotalBytes: 16 << 20, CacheColors: colors, StoreData: true})
	var clock sim.Clock
	k := kernel.New(mem, &clock, sim.DECstation5000(), kernel.Config{})
	pool, err := manager.NewFixedPool(k, 2048, 0)
	if err != nil {
		log.Fatal(err)
	}
	cfg := manager.Config{Name: "hot", Source: pool}
	var g *manager.Generic
	if colored {
		// One frame of each color: page p gets color p mod colors.
		g, err = manager.NewColoring(k, cfg, colors)
	} else {
		// A conventional allocator can hand out frames that all collide.
		cfg.Constraint = func(f kernel.Fault) phys.Range {
			return phys.Range{Color: 0, Node: phys.NodeAny}
		}
		g, err = manager.NewGeneric(k, cfg)
	}
	if err != nil {
		log.Fatal(err)
	}
	seg, err := g.CreateManagedSegment("hot-data")
	if err != nil {
		log.Fatal(err)
	}
	for p := int64(0); p < colors; p++ {
		if err := k.Access(seg, p, epcm.Write); err != nil {
			log.Fatal(err)
		}
	}
	cache := phys.NewCache(colors, 2)
	for round := 0; round < 500; round++ {
		for p := int64(0); p < colors; p++ {
			cache.Access(seg.FrameAt(p))
		}
	}
	return cache.MissRatio()
}

// placement demonstrates NUMA-aware frame allocation: even pages on node 0,
// odd pages on node 1, as a DASH application would place data near the
// processors using it.
func placement() {
	mem := phys.NewMemory(phys.Config{FrameSize: 4096, TotalBytes: 16 << 20, Nodes: 2, StoreData: true})
	var clock sim.Clock
	k := kernel.New(mem, &clock, sim.DECstation5000(), kernel.Config{})
	pool, err := manager.NewFixedPool(k, 4000, 0)
	if err != nil {
		log.Fatal(err)
	}
	g, err := manager.NewPlacement(k, manager.Config{Name: "dash", Source: pool},
		func(f kernel.Fault) int { return int(f.Page % 2) })
	if err != nil {
		log.Fatal(err)
	}
	seg, err := g.CreateManagedSegment("shared-array")
	if err != nil {
		log.Fatal(err)
	}
	for p := int64(0); p < 8; p++ {
		if err := k.Access(seg, p, epcm.Write); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("\nNUMA placement (even pages -> node 0, odd -> node 1):")
	attrs, err := k.GetPageAttributes(seg, 0, 8)
	if err != nil {
		log.Fatal(err)
	}
	for _, a := range attrs {
		fmt.Printf("  page %d -> PFN %5d  node %d\n", a.Page, a.PFN, a.Node)
	}
}
