// Quickstart: boot a V++ system, write an application-specific segment
// manager, and watch external page-cache management work — the Figure 2
// fault-handling sequence, page migration, physical page attributes, and
// application-chosen reclamation.
package main

import (
	"fmt"
	"log"
	"time"

	"epcm"
	"epcm/internal/manager"
)

func main() {
	// 1. Boot a machine: 32 MB of 4 KB frames, kernel, SPCM (memory
	//    market) and the default segment manager.
	sys, err := epcm.Boot(epcm.Config{MemoryBytes: 32 << 20, StoreData: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("booted: %d frames of %d bytes; SPCM holds %d free frames\n",
		sys.Mem.NumFrames(), sys.Mem.FrameSize(), sys.SPCM.FreeFrames())

	// 2. Put a file on the file server and create an application-specific
	//    segment manager whose fill routine reads from it. The Fill hook is
	//    the paper's "page fill routines can be easily specialized".
	sys.Store.Preload("dataset", 64, func(b int64, buf []byte) { buf[0] = byte(b) })
	backing := manager.NewFileBacking(sys.Store)
	mgr, account, err := sys.NewAppManager(epcm.ManagerConfig{
		Name:    "quickstart-manager",
		Backing: backing,
	}, 1000 /* drams per second of income */)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Create a segment managed by *our* manager and bind its backing
	//    file. From now on, every fault on this segment comes to us.
	seg, err := mgr.CreateManagedSegment("dataset-segment")
	if err != nil {
		log.Fatal(err)
	}
	backing.BindFile(seg, "dataset")

	// 4. Reference a missing page: the kernel delivers the fault to the
	//    manager, which allocates a frame from its free-page segment
	//    (requesting more from the SPCM as needed), fills it from the file
	//    server, and migrates it to the faulting page (Figure 2).
	start := sys.Clock.Now()
	if err := sys.Kernel.Access(seg, 7, epcm.Read); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fault on page 7 served in %v of virtual time; data[0]=%d\n",
		sys.Clock.Now()-start, seg.FrameAt(7).Data()[0])

	// 5. The application can see exactly which physical frame backs each
	//    page — the information page coloring and placement control need.
	attrs, err := sys.Kernel.GetPageAttributes(seg, 7, 1)
	if err != nil {
		log.Fatal(err)
	}
	a := attrs[0]
	fmt.Printf("page 7 -> PFN %d (phys %#x), color %d, node %d, flags %v\n",
		a.PFN, a.PhysAddr, a.Color, a.Node, a.Flags)

	// 6. Touch a working set, then reclaim under application control: the
	//    manager's clock picks victims, writes dirty pages back, and keeps
	//    reclaimed frames associated for fast re-faults.
	for p := int64(0); p < 16; p++ {
		if err := sys.Kernel.Access(seg, p, epcm.Write); err != nil {
			log.Fatal(err)
		}
	}
	if err := sys.Kernel.ModifyPageFlags(epcm.AppCred, seg, 0, 16, 0, epcm.FlagReferenced); err != nil {
		log.Fatal(err)
	}
	n, err := mgr.Reclaim(4, epcm.AnyFrame())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reclaimed %d frames; resident pages now %d, free frames %d\n",
		n, mgr.ResidentPages(), mgr.FreeFrames())

	// A re-fault on a reclaimed page comes straight back from the
	// manager's free-page segment — no I/O at all (§2.2).
	var victim int64 = -1
	for p := int64(0); p < 16; p++ {
		if !seg.HasPage(p) {
			victim = p
			break
		}
	}
	reads := sys.Store.Reads()
	if err := sys.Kernel.Access(seg, victim, epcm.Read); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fast re-fault of page %d: %d server reads (stats: %+v)\n",
		victim, sys.Store.Reads()-reads, mgr.Stats())

	// 7. The memory market: our account pays rent under contention and is
	//    answerable to the SPCM.
	sys.Clock.Advance(5 * time.Second)
	sys.SPCM.SettleAll()
	fmt.Printf("account %q: balance %.1f drams, holding %d pages\n",
		account.Name(), account.Balance(), account.HeldPages())
}
