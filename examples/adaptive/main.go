// Adaptive: the paper's §1 motivating scenario — a large-scale particle
// simulation (MP3D-style) that adjusts the number of particles it uses,
// and thus the amount of memory it requires, based on the availability of
// physical memory.
//
// The same total work (particle·steps) is run twice on a market-governed
// machine where the simulation's dram income sustains only about half of
// its maximum appetite:
//
//   - adaptive: queries the SPCM (free frames, unmet demand, affordable
//     rent) and right-sizes its working set, discarding regenerable
//     particle pages with no I/O;
//   - oblivious: keeps the full working set, goes insolvent, loses frames
//     to SPCM enforcement (with swap writebacks) and refaults them from
//     disk every step — the thrashing the paper warns about.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"epcm/internal/apps"
	"epcm/internal/kernel"
	"epcm/internal/manager"
	"epcm/internal/phys"
	"epcm/internal/sim"
	"epcm/internal/spcm"
	"epcm/internal/storage"
)

func main() {
	work := flag.Int64("work", 30000, "total work in page-steps")
	income := flag.Float64("income", 0.375, "simulation's dram income per second")
	flag.Parse()

	fmt.Printf("total work: %d page·steps; income sustains ~%.0f pages of a 200-page appetite\n\n",
		*work, *income*256)
	for _, adaptive := range []bool{true, false} {
		elapsed, steps, ioOps, shrinks := run(*work, *income, adaptive)
		mode := "oblivious"
		if adaptive {
			mode = "adaptive "
		}
		fmt.Printf("%s: %10v elapsed, %4d steps, %5d disk ops, %d shrinks\n",
			mode, elapsed.Round(time.Millisecond), steps, ioOps, shrinks)
	}
}

func run(work int64, income float64, adaptive bool) (time.Duration, int64, int64, int64) {
	mem := phys.NewMemory(phys.Config{FrameSize: 4096, TotalBytes: 2 << 20, StoreData: false})
	var clock sim.Clock
	k := kernel.New(mem, &clock, sim.DECstation5000(), kernel.Config{})
	policy := spcm.DefaultPolicy()
	policy.FreeWhenUncontended = false
	policy.SavingsTaxRate = 0
	s := spcm.New(k, policy)
	store := storage.NewStore(&clock, storage.LocalDisk(), 4096)

	m, err := apps.NewMP3D(k, s, manager.NewSwapBacking(store), income)
	if err != nil {
		log.Fatal(err)
	}
	m.Adaptive = adaptive
	m.MaxPages = 200
	m.MinPages = 16
	m.Tick = func() {
		s.SettleAll()
		if _, err := s.Enforce(); err != nil {
			log.Fatal(err)
		}
	}
	start := clock.Now()
	steps, err := m.RunWork(work)
	if err != nil {
		log.Fatal(err)
	}
	return clock.Now() - start, steps, store.Reads() + store.Writes(), m.Shrinks()
}
