module epcm

go 1.22
