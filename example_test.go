package epcm_test

import (
	"fmt"
	"log"
	"sync"
	"time"

	"epcm"
	"epcm/internal/manager"
	"epcm/internal/sim"
)

// Example shows the minimal external-page-cache-management flow: boot a
// system, create an application-specific segment manager, and take a fault
// through it.
func Example() {
	sys, err := epcm.Boot(epcm.Config{MemoryBytes: 8 << 20, StoreData: true})
	if err != nil {
		log.Fatal(err)
	}
	mgr, _, err := sys.NewAppManager(epcm.ManagerConfig{Name: "example"}, 1000)
	if err != nil {
		log.Fatal(err)
	}
	seg, err := mgr.CreateManagedSegment("data")
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Kernel.Access(seg, 0, epcm.Write); err != nil {
		log.Fatal(err)
	}
	fmt.Println("resident pages:", mgr.ResidentPages())
	// Output: resident pages: 1
}

// ExampleSystem_NewAppManager demonstrates physical placement control: the
// manager requests frames only from a specific physical range, and the
// application can verify the placement through GetPageAttributes.
func ExampleSystem_NewAppManager() {
	sys, err := epcm.Boot(epcm.Config{MemoryBytes: 8 << 20, StoreData: true})
	if err != nil {
		log.Fatal(err)
	}
	mgr, _, err := sys.NewAppManager(epcm.ManagerConfig{
		Name: "placed",
		Constraint: func(f epcm.Fault) epcm.FrameRange {
			return epcm.FrameRange{Lo: 64, Hi: 128, Color: -1, Node: -1}
		},
	}, 1000)
	if err != nil {
		log.Fatal(err)
	}
	seg, err := mgr.CreateManagedSegment("pinned-range")
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Kernel.Access(seg, 0, epcm.Write); err != nil {
		log.Fatal(err)
	}
	attrs, err := sys.Kernel.GetPageAttributes(seg, 0, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("frame in requested range:", attrs[0].PFN >= 64 && attrs[0].PFN < 128)
	// Output: frame in requested range: true
}

// ExampleMRUVictim shows installing an application-specific replacement
// policy — the paper's specializable "page replacement selection routine".
func ExampleMRUVictim() {
	sys, err := epcm.Boot(epcm.Config{MemoryBytes: 8 << 20, StoreData: true})
	if err != nil {
		log.Fatal(err)
	}
	mgr, _, err := sys.NewAppManager(epcm.ManagerConfig{
		Name:         "scanner",
		Backing:      manager.NewSwapBacking(sys.Store),
		SelectVictim: epcm.MRUVictim,
	}, 1000)
	if err != nil {
		log.Fatal(err)
	}
	seg, err := mgr.CreateManagedSegment("matrix")
	if err != nil {
		log.Fatal(err)
	}
	for p := int64(0); p < 8; p++ {
		if err := sys.Kernel.Access(seg, p, epcm.Write); err != nil {
			log.Fatal(err)
		}
	}
	// Reclaim two frames: the MRU policy takes the highest pages.
	n, err := mgr.Reclaim(2, epcm.AnyFrame())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("reclaimed:", n, "page 7 resident:", seg.HasPage(7), "page 0 resident:", seg.HasPage(0))
	// Output: reclaimed: 2 page 7 resident: false page 0 resident: true
}

// ExampleSetSegmentPolicy binds a replacement policy to one segment: the
// manager keeps its default clock sweep everywhere else, but this segment
// runs true LRU. After one second-chance pass clears the reference bits,
// LRU evicts the coldest (lowest-numbered, never re-touched) pages first.
func ExampleSetSegmentPolicy() {
	sys, err := epcm.Boot(epcm.Config{MemoryBytes: 8 << 20, StoreData: true})
	if err != nil {
		log.Fatal(err)
	}
	mgr, _, err := sys.NewAppManager(epcm.ManagerConfig{
		Name:    "mixed-policies",
		Backing: manager.NewSwapBacking(sys.Store),
	}, 1000)
	if err != nil {
		log.Fatal(err)
	}
	seg, err := mgr.CreateManagedSegment("lru-data")
	if err != nil {
		log.Fatal(err)
	}
	lru, err := epcm.NewPolicy("lru")
	if err != nil {
		log.Fatal(err)
	}
	epcm.SetSegmentPolicy(mgr, seg, lru)

	for p := int64(0); p < 8; p++ {
		if err := sys.Kernel.Access(seg, p, epcm.Write); err != nil {
			log.Fatal(err)
		}
	}
	// Reclaim two frames: LRU takes the two oldest pages.
	n, err := mgr.Reclaim(2, epcm.AnyFrame())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("reclaimed:", n, "page 0 resident:", seg.HasPage(0), "page 7 resident:", seg.HasPage(7))
	// Output: reclaimed: 2 page 0 resident: false page 7 resident: true
}

// ExampleFaultPlan arms the deterministic fault plane: seeded storage
// errors fly while the workload runs, and the named manager is crashed
// after its 100th fault delivery. The kernel revokes the dead manager, the
// default manager adopts its segments, and every page stays reachable.
func ExampleFaultPlan() {
	sys, err := epcm.Boot(epcm.Config{
		MemoryBytes: 1 << 20,
		StoreData:   true,
		FaultPlan: &epcm.FaultPlan{
			Seed:             42,
			FetchErrorProb:   0.05, // injected backing-store failures...
			TransientStorage: true, // ...marked retryable
			CrashManager:     "mine",
			CrashAtFault:     100, // kill "mine" at its 101st fault delivery
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	mgr, _, err := sys.NewAppManager(epcm.ManagerConfig{
		Name:       "mine",
		Backing:    epcm.NewSwapBacking(sys.Store),
		MaxRetries: 3, // retry transient storage errors with backoff
	}, 1000)
	if err != nil {
		log.Fatal(err)
	}
	seg, err := mgr.CreateManagedSegment("data")
	if err != nil {
		log.Fatal(err)
	}
	for p := int64(0); p < 400; p++ {
		_ = sys.Kernel.Access(seg, p, epcm.Write) // chaos flies here
	}
	sys.Chaos.Disarm()
	reachable := true
	for p := int64(0); p < 400; p++ {
		if err := sys.Kernel.Access(seg, p, epcm.Read); err != nil {
			reachable = false
		}
	}
	fmt.Println("crashed:", sys.Chaos.Crashed("mine"),
		"revocations:", sys.Kernel.Stats().Revocations,
		"reachable:", reachable)
	// Output: crashed: true revocations: 1 reachable: true
}

// Example_shardedTime drives the conservative parallel virtual-time engine
// directly: each shard advances its own clock, and cross-shard events must
// be scheduled at or beyond the send horizon (sender's now + lookahead),
// which is what lets shards drain whole windows concurrently without ever
// observing an event from the past. The lookahead is the cost model's
// minimum delivery latency — no cross-manager interaction is cheaper than
// a trap plus an upcall.
func Example_shardedTime() {
	cost := sim.DECstation5000()
	lookahead := cost.MinDeliveryLatency() // Trap + Upcall

	env := sim.NewShardedEnv(&sim.Clock{}, 2, lookahead)
	s0, s1 := env.Shard(0), env.Shard(1)

	s1.Go("consumer", func(p *sim.Proc) {
		p.Sleep(5 * time.Microsecond) // local work on shard 1's clock
	})
	s0.Go("producer", func(p *sim.Proc) {
		p.Sleep(10 * time.Microsecond)
		// The earliest legal delivery time for a cross-shard event.
		s0.Send(s1, p.Now()+lookahead, func() {
			fmt.Println("delivered on shard 1 at", s1.Now())
		})
	})

	env.Run()
	fmt.Println("engine:", env.EngineName(),
		"shard 0 clock:", s0.Now(), "shard 1 clock:", s1.Now())
	// Output:
	// delivered on shard 1 at 50µs
	// engine: sharded shard 0 clock: 10µs shard 1 clock: 50µs
}

// ExampleConcurrentScheduler boots the fault-delivery plane in concurrent
// mode: each segment manager runs on its own worker goroutine (the paper's
// separate manager processes), so applications on different managers fault
// in parallel against one kernel. Costs still accrue to the shared virtual
// clock, so results are identical to the serial scheduler's.
func ExampleConcurrentScheduler() {
	sys, err := epcm.Boot(epcm.Config{
		MemoryBytes: 32 << 20,
		Scheduler:   epcm.ConcurrentScheduler, // per-manager worker goroutines
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Shutdown() // retire the worker goroutines

	const apps = 4
	segs := make([]*epcm.Segment, apps)
	for i := range segs {
		mgr, _, err := sys.NewAppManager(epcm.ManagerConfig{
			Name:     fmt.Sprintf("app-%d", i),
			Delivery: epcm.DeliverSeparateProcess,
		}, 1000)
		if err != nil {
			log.Fatal(err)
		}
		if segs[i], err = mgr.CreateManagedSegment(fmt.Sprintf("data-%d", i)); err != nil {
			log.Fatal(err)
		}
	}

	// One goroutine per application; each faults against its own manager.
	var wg sync.WaitGroup
	for _, seg := range segs {
		wg.Add(1)
		go func(seg *epcm.Segment) {
			defer wg.Done()
			for p := int64(0); p < 64; p++ {
				if err := sys.Kernel.Access(seg, p, epcm.Write); err != nil {
					log.Fatal(err)
				}
			}
		}(seg)
	}
	wg.Wait()

	fmt.Println("faults:", sys.Kernel.Stats().Faults)
	// Output: faults: 256
}

// Example_superpages enables the superpage extent fast path: the manager
// pages in whole aligned extents of 2^4 = 16 base pages over physically
// contiguous frames (one batched migration charging a single SuperpageOp),
// then promotes each extent to one span mapping entry and one wide TLB way.
// 256 sequential page touches thus take 16 faults, and the whole working
// set is reachable through 16 translation entries instead of 256. Both
// halves of the gate must be set — Config.Superpages (process-wide) and
// ManagerConfig.ExtentOrder (per manager) — so default-configured runs are
// unaffected.
func Example_superpages() {
	sys, err := epcm.Boot(epcm.Config{
		MemoryBytes: 8 << 20,
		Superpages:  true, // process-wide switch (same as epcm.SetSuperpages)
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Shutdown()
	defer epcm.SetSuperpages(false) // process-wide: restore the default

	mgr, _, err := sys.NewAppManager(epcm.ManagerConfig{
		Name:        "grid",
		ExtentOrder: 4, // promote aligned 16-page extents
	}, 1e6)
	if err != nil {
		log.Fatal(err)
	}
	seg, err := mgr.CreateManagedSegment("data")
	if err != nil {
		log.Fatal(err)
	}
	for p := int64(0); p < 256; p++ {
		if err := sys.Kernel.Access(seg, p, epcm.Write); err != nil {
			log.Fatal(err)
		}
	}

	st := mgr.SuperStats()
	fmt.Println("faults:", sys.Kernel.Stats().Faults,
		"extents:", seg.ExtentCount(),
		"promotions:", st.Promotions,
		"extent fills:", st.ExtentFills)
	// Output: faults: 16 extents: 16 promotions: 16 extent fills: 16
}
