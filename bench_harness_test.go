// Harness and hot-path micro-benchmarks: the simulator-speed numbers behind
// the BENCH_reproduce.json trajectory. Unlike the table benchmarks (which
// report virtual machine time), these measure the simulator's own real speed
// — simulated events per wall-clock second and allocations per fault.
//
// Run:
//
//	go test -bench=Harness -benchmem
package epcm_test

import (
	"testing"

	"epcm/internal/experiments"
	"epcm/internal/harness"
	"epcm/internal/kernel"
	"epcm/internal/manager"
	"epcm/internal/phys"
	"epcm/internal/sim"
	"epcm/internal/storage"
)

// BenchmarkHarnessFaultPath drives the single-threaded V++ replacement
// fault path on a metadata-only machine — the tables-2/3 hot shape: every
// access faults, evicts a victim, writes it back and fills the new page.
// Reports real simulated-events/sec plus allocs/op; the dense page store
// and pooled frame buffers show up directly here.
func BenchmarkHarnessFaultPath(b *testing.B) {
	mem := phys.NewMemory(phys.Config{FrameSize: 4096, TotalBytes: 1 << 20, StoreData: false})
	var clock sim.Clock
	k := kernel.New(mem, &clock, sim.DECstation5000(), kernel.Config{})
	store := storage.NewStore(&clock, storage.LocalDisk(), 4096)
	pool, err := manager.NewFixedPool(k, 64, 0)
	if err != nil {
		b.Fatal(err)
	}
	g, err := manager.NewGeneric(k, manager.Config{
		Name: "bench", Source: pool, Backing: manager.NewSwapBacking(store),
	})
	if err != nil {
		b.Fatal(err)
	}
	seg, err := g.CreateManagedSegment("data")
	if err != nil {
		b.Fatal(err)
	}
	// A working set twice the pool keeps the manager in steady-state
	// replacement: fault, evict, write back, fill.
	const pages = 128
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := k.Access(seg, int64(i%pages), kernel.Write); err != nil {
			b.Fatal(err)
		}
	}
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(b.N)/secs, "sim-events/sec")
	}
}

// BenchmarkHarnessTables runs the fast experiment set through the worker
// pool at GOMAXPROCS, reporting aggregate simulated-events/sec — the number
// that decides how many tables, ablation arms and sweep seeds fit in a run.
func BenchmarkHarnessTables(b *testing.B) {
	tasks := []harness.Task[*experiments.Report]{
		{Name: "table1", Run: experiments.Table1},
		{Name: "tables2-3", Run: experiments.Tables23},
		{Name: "ablations", Run: experiments.Ablations},
	}
	b.ReportAllocs()
	b.ResetTimer()
	var events int64
	for i := 0; i < b.N; i++ {
		for _, r := range harness.Run(tasks, 0) {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
			events += r.Value.Events
		}
	}
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(events)/secs, "sim-events/sec")
	}
}

// BenchmarkHarnessOverhead isolates the pool's own cost: trivial tasks, so
// the per-task dispatch overhead dominates.
func BenchmarkHarnessOverhead(b *testing.B) {
	tasks := make([]harness.Task[int], 64)
	for i := range tasks {
		i := i
		tasks[i] = harness.Task[int]{Name: "t", Run: func() (int, error) { return i, nil }}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		harness.Run(tasks, 0)
	}
}
